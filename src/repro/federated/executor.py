"""Execution back-ends for per-round local client training.

The paper implements "the training process of participated clients as
parallel processes" on a GPU box.  In this reproduction local updates are
plain NumPy, so four execution modes are offered:

* ``"sequential"`` (default) — deterministic and simplest; NumPy already uses
  multi-threaded BLAS for the matrix multiplies;
* ``"thread"`` — a thread pool; useful when local updates release the GIL in
  BLAS-heavy layers;
* ``"process"`` — a process pool for genuinely CPU-bound local updates with
  larger models; model states are pickled across the process boundary;
* ``"vectorized"`` — the cohort back-end: the K selected clients' datasets
  are stacked into one ``(K, N_vc, …)`` tensor, the model's parameters are
  broadcast to a leading client axis, and every local optimisation step for
  all K clients runs as a handful of batched matmuls
  (:mod:`repro.nn.batched`).  This is the fastest single-core mode for many
  small clients, where the sequential Python loop — not BLAS — is the
  bottleneck;
* ``"parallel"`` — the multi-cohort back-end: the K clients are sharded
  across ``num_workers`` persistent worker processes, each running its shard
  as an independent vectorized block with bulk state crossing the process
  boundary through shared-memory pools
  (:class:`~repro.federated.scheduler.CohortScheduler`).  This is the
  fastest mode on multi-core boxes at large K; with float64 pools it is
  bit-identical to ``"vectorized"``.

All modes produce matching results for the same inputs: the work items are
pure functions of (client dataset, incoming weights, config), and the
batched kernels mirror the sequential arithmetic slice-for-slice.  When a
cohort cannot be vectorized (unregistered model type, ragged client dataset
sizes) the vectorized mode transparently falls back to the sequential loop
and records the reason in :attr:`LocalUpdateExecutor.last_fallback_reason`.

The vectorized back-end is *round-persistent*: the first vectorized round
builds a :class:`~repro.federated.workspace.CohortWorkspace` (flat parameter
pools, optimiser state, stacked data buffers) and every shape-compatible
later round reuses it — rebinding the fresh template into the existing
pools, resetting (not reallocating) the optimiser and restacking only the
data slots whose selected client changed.  ``dtype="float32"`` opts the
cohort into single-precision pools (see
:data:`repro.core.config.RUNTIME_DTYPES`); the float64 default stays
bit-identical to sequential execution, and any fallback always runs the
float64 sequential reference.

Note on result lifetime: vectorized rounds return zero-copy views into the
workspace pools (:class:`~repro.federated.aggregation.StackedClientStates`).
They are valid until the same executor runs its next vectorized round, which
reuses — and overwrites — those pools; aggregate (or copy) before re-running,
as the round loop naturally does.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.config import resolve_runtime_dtype, resolve_shard_policy
from ..data.cohort import CohortShapeError
from ..nn.batched import UnvectorizableModelError
from ..nn.module import Module
from .aggregation import StackedClientStates
from .client import FederatedClient, LocalTrainingConfig
from .scheduler import CohortScheduler, SchedulerError
from .workspace import CohortWorkspace, train_cohort

__all__ = ["EXECUTOR_MODES", "LocalUpdateExecutor"]

StateDict = dict[str, np.ndarray]

EXECUTOR_MODES = ("sequential", "thread", "process", "vectorized", "parallel")

#: modes that run the cohort tensor program (and therefore accept the
#: float32 fast path and the round-persistent workspace machinery)
_COHORT_MODES = ("vectorized", "parallel")


def _run_local_update(client: FederatedClient, model: Module, global_state: StateDict,
                      config: LocalTrainingConfig, round_index: int) -> StateDict:
    """Worker body: load global weights into the clone and train locally."""
    model.load_state_dict(global_state)
    return client.local_train(model, config, round_index=round_index)


class LocalUpdateExecutor:
    """Run the selected clients' local updates with the chosen back-end.

    ``num_workers`` / ``shard_policy`` / ``scheduler_timeout`` configure the
    ``"parallel"`` mode's scheduler (worker-process count, client→shard
    assignment, and how long a round waits for a worker's reply before
    declaring it wedged — raise it for genuinely long rounds, ``None``
    waits forever); they are ignored by every other mode.  ``max_workers``
    bounds the ``"thread"`` / ``"process"`` pools.

    Example
    -------
    >>> executor = LocalUpdateExecutor("vectorized")
    >>> executor.mode, executor.workspace_builds
    ('vectorized', 0)
    >>> # states = executor.run_round(clients, model_factory, global_state,
    >>> #                             LocalTrainingConfig())
    """

    def __init__(self, mode: str = "sequential", max_workers: Optional[int] = None,
                 dtype: "str | np.dtype" = "float64",
                 num_workers: Optional[int] = None,
                 shard_policy: str = "contiguous",
                 scheduler_timeout: Optional[float] = 120.0):
        if mode not in EXECUTOR_MODES:
            raise ValueError(f"mode must be one of {EXECUTOR_MODES}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be positive when given")
        self.dtype = resolve_runtime_dtype(dtype)
        if self.dtype != np.dtype(np.float64) and mode not in _COHORT_MODES:
            raise ValueError(
                "the float32 fast path is a cohort feature; it requires "
                f"mode in {_COHORT_MODES}, got mode={mode!r}"
            )
        if scheduler_timeout is not None and scheduler_timeout <= 0:
            raise ValueError("scheduler_timeout must be positive (or None)")
        self.mode = mode
        self.max_workers = max_workers
        self.num_workers = num_workers
        self.shard_policy = resolve_shard_policy(shard_policy)
        self.scheduler_timeout = scheduler_timeout
        #: why the most recent cohort round fell back (or None)
        self.last_fallback_reason: Optional[str] = None
        #: injected failures of the most recent round: cohort position -> cause
        #: ("dropout" mid-round, "straggler" past the collection deadline)
        self.last_round_failures: dict[int, str] = {}
        #: simulated round duration of the most recent round (the slowest
        #: surviving straggler's delay; 0.0 without injected stragglers)
        self.last_round_delay: float = 0.0
        #: the round-persistent cohort state, built lazily on the first
        #: vectorized round and reused while rounds stay shape-compatible
        self.workspace: Optional[CohortWorkspace] = None
        #: how many times a workspace had to be (re)built — 1 after any number
        #: of shape-compatible vectorized rounds
        self.workspace_builds = 0
        #: the parallel mode's process fleet, built lazily on the first round
        self.scheduler: Optional[CohortScheduler] = None

    def close(self) -> None:
        """Shut down the parallel scheduler's worker fleet (if any).

        Idempotent, and a no-op for every in-process mode.  The executor
        stays usable afterwards — the next parallel round simply rebuilds
        the fleet.

        Example
        -------
        >>> executor = LocalUpdateExecutor("parallel", num_workers=2)
        >>> executor.close()
        """
        if self.scheduler is not None:
            self.scheduler.shutdown()

    def run_round(self, clients: Sequence[FederatedClient],
                  model_factory: Callable[[], Module],
                  global_state: StateDict,
                  config: LocalTrainingConfig,
                  round_index: int = 0,
                  faults: "Optional[CohortFaults]" = None) -> list[StateDict]:
        """Train every client in *clients* from *global_state*; return their states.

        *faults* (a :class:`repro.scenarios.CohortFaults`, position-keyed)
        opts into per-client failure injection: clients marked as dropouts
        fail mid-round, and stragglers whose simulated delay exceeds the
        fault plan's collection deadline are dropped as ``"straggler"``.
        The returned list then covers only the *survivors*, in cohort order;
        :attr:`last_round_failures` maps the failed positions to their cause
        and :attr:`last_round_delay` reports the simulated round duration.
        The cohort back-ends train the full cohort and discard the failed
        rows (a real dropout wastes its local compute too — and keeping the
        cohort geometry stable preserves the round-persistent workspace),
        while the sequential/pool back-ends skip failed clients outright.
        Without *faults* (or with an empty plan) behaviour is bit-identical
        to before.

        Example
        -------
        >>> executor = LocalUpdateExecutor("sequential")
        >>> executor.run_round([], lambda: None, {}, LocalTrainingConfig())
        []
        """
        self.last_round_failures = {}
        self.last_round_delay = 0.0
        if not clients:
            return []
        failed: dict[int, str] = {}
        if faults is not None:
            failed = faults.resolve()
            failed = {p: c for p, c in failed.items() if p < len(clients)}
            self.last_round_failures = failed
            self.last_round_delay = faults.round_delay()
        if self.mode == "parallel":
            self.last_fallback_reason = None
            try:
                states = self._run_parallel(clients, model_factory, global_state,
                                            config, round_index)
                # the scheduler counts the whole cohort; align participation
                # bookkeeping with the other back-ends (failed != participated)
                for position in failed:
                    clients[position].rounds_participated -= 1
                return self._filter_survivors(states, failed)
            except (SchedulerError, UnvectorizableModelError,
                    CohortShapeError) as exc:
                self.last_fallback_reason = str(exc)
                try:
                    return self._run_vectorized(clients, model_factory,
                                                global_state, config, round_index,
                                                failed=failed)
                except (UnvectorizableModelError, CohortShapeError) as inner:
                    self.last_fallback_reason = (
                        f"{exc}; vectorized fallback failed: {inner}"
                    )
                    return self._run_sequential(clients, model_factory,
                                                global_state, config, round_index,
                                                failed=failed)
        if self.mode == "vectorized":
            self.last_fallback_reason = None
            try:
                return self._run_vectorized(clients, model_factory, global_state,
                                            config, round_index, failed=failed)
            except (UnvectorizableModelError, CohortShapeError) as exc:
                self.last_fallback_reason = str(exc)
                return self._run_sequential(clients, model_factory, global_state,
                                            config, round_index, failed=failed)
        if self.mode == "sequential":
            return self._run_sequential(clients, model_factory, global_state,
                                        config, round_index, failed=failed)
        pool_cls = ThreadPoolExecutor if self.mode == "thread" else ProcessPoolExecutor
        with pool_cls(max_workers=self.max_workers) as pool:
            futures = [
                pool.submit(_run_local_update, client, model_factory(), global_state,
                            config, round_index)
                for position, client in enumerate(clients)
                if position not in failed
            ]
            return [f.result() for f in futures]

    # -- back-ends -------------------------------------------------------------

    def _filter_survivors(self, states: "list[StateDict]",
                          failed: "dict[int, str]") -> "list[StateDict]":
        """Drop the failed positions from a full-cohort result.

        The no-fault case returns *states* untouched (no copies), preserving
        the zero-fault identity; with faults, stacked results are re-stacked
        over the survivor rows so aggregation's mean-over-client-axis fast
        path covers exactly the survivors.
        """
        if not failed:
            return states
        keep = [i for i in range(len(states)) if i not in failed]
        if isinstance(states, StackedClientStates):
            idx = np.asarray(keep, dtype=int)
            stacked = {name: value[idx] for name, value in states.stacked.items()}
            per_client = [{name: stacked[name][j] for name in stacked}
                          for j in range(len(keep))]
            return StackedClientStates(per_client, stacked)
        return [states[i] for i in keep]

    def _run_sequential(self, clients: Sequence[FederatedClient],
                        model_factory: Callable[[], Module],
                        global_state: StateDict, config: LocalTrainingConfig,
                        round_index: int,
                        failed: "Optional[dict[int, str]]" = None) -> list[StateDict]:
        failed = failed or {}
        return [
            _run_local_update(client, model_factory(), global_state, config, round_index)
            for position, client in enumerate(clients)
            if position not in failed
        ]

    def _run_vectorized(self, clients: Sequence[FederatedClient],
                        model_factory: Callable[[], Module],
                        global_state: StateDict, config: LocalTrainingConfig,
                        round_index: int,
                        failed: "Optional[dict[int, str]]" = None,
                        ) -> StackedClientStates:
        """Train the whole cohort as one batched tensor program.

        Replays the exact sequential schedule — per-client epoch permutations
        from the same seeded RNG stream as :class:`repro.data.DataLoader`,
        same batch boundaries, same optimiser arithmetic — with the client
        loop folded into a leading tensor axis.  All round-scoped state lives
        in the persistent :class:`CohortWorkspace`; a shape-compatible round
        allocates no new pools.  Injected *failed* positions still train
        (every client's row is arithmetically independent, and a stable
        cohort size keeps the workspace warm) but their rows are discarded
        from the returned stack — so the survivors are bit-identical to a
        sequential round that never trained the failed clients at all.
        """
        template = model_factory()
        workspace = self.workspace
        if workspace is None or not workspace.adopt(template, len(clients)):
            # incompatible (or first) round: build fresh pools; may raise
            # UnvectorizableModelError straight into the sequential fallback
            workspace = CohortWorkspace(template, len(clients), dtype=self.dtype)
            self.workspace = workspace
            self.workspace_builds += 1
        # a ragged cohort raises CohortShapeError here; the workspace stays
        # intact (already-copied slots remain truthful) for the next dense round
        x, y = workspace.stack(clients)
        batched = workspace.model
        batched.load_state_dict_broadcast(global_state)
        optimizer = workspace.optimizer_for(config)
        # one RNG per client, seeded exactly like the sequential DataLoader
        rngs = [
            np.random.default_rng(
                None if client.seed is None else client.seed + 7919 * round_index
            )
            for client in clients
        ]
        train_cohort(batched, optimizer, x, y, rngs, config,
                     rows=workspace.client_rows)
        failed = failed or {}
        for position, client in enumerate(clients):
            if position not in failed:
                client.rounds_participated += 1
        return self._filter_survivors(
            StackedClientStates(batched.state_dicts(), batched.stacked_state()),
            failed)

    def _run_parallel(self, clients: Sequence[FederatedClient],
                      model_factory: Callable[[], Module],
                      global_state: StateDict, config: LocalTrainingConfig,
                      round_index: int) -> StackedClientStates:
        """Shard the cohort across the scheduler's persistent worker fleet.

        The scheduler is built lazily on the first parallel round and reused
        for as long as rounds keep the same geometry; every failure mode
        (crashed worker, unvectorizable model, ragged cohort) raises into
        :meth:`run_round`'s fallback chain.
        """
        if self.scheduler is None:
            self.scheduler = CohortScheduler(num_workers=self.num_workers,
                                             shard_policy=self.shard_policy,
                                             dtype=self.dtype,
                                             timeout=self.scheduler_timeout)
        return self.scheduler.run_round(clients, model_factory, global_state,
                                        config, round_index)
