"""Weight-divergence measurement (the empirical side of eq. (2), §4.2).

The paper bounds the divergence between FedAvg weights and the weights of a
centralised run by two EMD terms: ① the discrepancy between each client's
distribution and the population distribution, and ② the gap between the
population distribution and the uniform distribution.  This module measures
the divergence directly — train the same initial model (a) centrally on the
pooled selected data and (b) federated over the selected clients — so the
eq. (2) benchmark can show the divergence growing with either EMD term.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..data.dataloader import DataLoader
from ..data.dataset import ArrayDataset
from ..data.distributions import emd, population_distribution, uniform_distribution
from ..federated.aggregation import average_states, state_difference_norm
from ..nn.loss import CrossEntropyLoss
from ..nn.module import Module
from ..nn.optim import SGD

__all__ = ["DivergenceReport", "weight_divergence_experiment"]


@dataclass(frozen=True)
class DivergenceReport:
    """Outcome of one weight-divergence experiment."""

    weight_divergence: float          # ||ω_fed − ω_central||₂ after training
    emd_clients_to_population: float  # mean ||p_k − p_o||₁  (term ①)
    emd_population_to_uniform: float  # ||p_o − p_u||₁       (term ②)
    rounds: int
    local_steps: int


def _train_steps(model: Module, dataset: ArrayDataset, steps: int, lr: float,
                 batch_size: int, seed: int) -> None:
    """Run a fixed number of SGD steps on a dataset (in place)."""
    loss_fn = CrossEntropyLoss()
    optimizer = SGD(model, lr=lr)
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, seed=seed)
    done = 0
    while done < steps:
        for xb, yb in loader:
            if done >= steps:
                break
            logits = model(xb)
            _, grad = loss_fn(logits, yb)
            optimizer.zero_grad()
            model.backward(grad)
            optimizer.step()
            done += 1


def weight_divergence_experiment(
    model_factory: Callable[[], Module],
    client_datasets: Sequence[ArrayDataset],
    num_classes: int,
    rounds: int = 3,
    local_steps: int = 10,
    lr: float = 0.05,
    batch_size: int = 16,
    seed: int = 0,
) -> DivergenceReport:
    """Measure FedAvg-vs-centralised weight divergence on given client data.

    Both runs start from the same initial weights (same ``model_factory``
    seed).  Each round, the federated run trains one clone per client for
    ``local_steps`` SGD steps and averages (eq. (1)); the centralised run
    trains a single model for the same total number of steps on the pooled
    data.  The returned report pairs the measured divergence with the two
    EMD terms of eq. (2).
    """
    if not client_datasets:
        raise ValueError("need at least one client dataset")
    if rounds < 1 or local_steps < 1:
        raise ValueError("rounds and local_steps must be positive")

    federated = model_factory()
    centralized = model_factory()
    if not np.allclose(federated.flatten_parameters(), centralized.flatten_parameters()):
        raise ValueError("model_factory must produce identically initialised models")

    pooled_x = np.concatenate([ds.x for ds in client_datasets])
    pooled_y = np.concatenate([ds.y for ds in client_datasets])
    pooled = ArrayDataset(pooled_x, pooled_y, num_classes=num_classes)

    for r in range(rounds):
        # federated: every client trains a clone of the current global model
        states = []
        for i, ds in enumerate(client_datasets):
            clone = federated.clone()
            _train_steps(clone, ds, local_steps, lr, batch_size, seed + 31 * r + i)
            states.append(clone.state_dict())
        federated.load_state_dict(average_states(states))
        # centralised: same number of optimisation steps on the pooled data
        _train_steps(centralized, pooled, local_steps, lr, batch_size, seed + 97 * r)

    divergence = state_difference_norm(federated.state_dict(), centralized.state_dict())

    client_dists = [ds.class_distribution() for ds in client_datasets]
    p_o = population_distribution(client_dists)
    term1 = float(np.mean([emd(p, p_o) for p in client_dists]))
    term2 = emd(p_o, uniform_distribution(num_classes))
    return DivergenceReport(
        weight_divergence=float(divergence),
        emd_clients_to_population=term1,
        emd_population_to_uniform=term2,
        rounds=rounds,
        local_steps=local_steps,
    )
