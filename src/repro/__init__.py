"""repro — a from-scratch reproduction of Dubhe (ICPP 2021).

Dubhe is a pluggable, privacy-preserving client-selection system for
federated learning: clients register their dominating data classes in a
homomorphically encrypted registry, compute their own participation
probability from the aggregated registry, and thereby flatten the population
distribution of every training round without revealing any individual
distribution to the server.

Sub-packages
------------
* :mod:`repro.crypto` — Paillier additively homomorphic encryption.
* :mod:`repro.data` — synthetic datasets, global skew, client partitioning.
* :mod:`repro.nn` — NumPy neural-network training substrate.
* :mod:`repro.federated` — the FL simulation engine (FedVC-style rounds).
* :mod:`repro.core` — Dubhe itself: registry, probabilities, selectors,
  multi-time selection, parameter search, the secure protocol and overhead
  accounting.
* :mod:`repro.analysis` — unbiasedness and weight-divergence measurements.
* :mod:`repro.scenarios` — fault injection (churn, stragglers, dropouts,
  label drift) with partial-round aggregation and robustness reports.
* :mod:`repro.transport` — the federated service layer: typed protocol
  messages over a versioned binary wire format, an asyncio TCP server and
  client, and the in-process transport behind the same interface.
* :mod:`repro.api` — :class:`~repro.api.Session`, the unified builder
  entry point for plain, scenario and ledgered runs on any transport.

Quickstart
----------
>>> from repro import quick_federation, DubheConfig, DubheSelector
>>> partition, generator = quick_federation(n_clients=100, rho=10.0, emd_avg=1.5, seed=0)
>>> config = DubheConfig(num_classes=10, participants_per_round=10,
...                      thresholds={1: 0.7, 2: 0.1, 10: 0.0})
>>> selector = DubheSelector(partition.client_distributions(), config, seed=0)
>>> selected = selector.select(round_index=0)
"""

from __future__ import annotations

from typing import Optional

from .core import (
    DubheConfig,
    DubheSelector,
    GreedySelector,
    RandomSelector,
    RegistryCodebook,
    SecureRegistrationRound,
    search_thresholds,
)
from .crypto import generate_keypair
from .data import (
    ClientPartition,
    EMDTargetPartitioner,
    half_normal_class_proportions,
    make_femnist_federation,
    make_synthetic_cifar,
    make_synthetic_mnist,
    make_uniform_test_set,
)
from .api import Session, SessionResult
from .federated import FederatedConfig, FederatedSimulation, LocalTrainingConfig
from .scenarios import ScenarioSpec, run_scenario

__version__ = "1.0.0"

__all__ = [
    "ClientPartition",
    "DubheConfig",
    "DubheSelector",
    "EMDTargetPartitioner",
    "FederatedConfig",
    "FederatedSimulation",
    "GreedySelector",
    "LocalTrainingConfig",
    "RandomSelector",
    "RegistryCodebook",
    "ScenarioSpec",
    "SecureRegistrationRound",
    "Session",
    "SessionResult",
    "__version__",
    "generate_keypair",
    "half_normal_class_proportions",
    "make_femnist_federation",
    "make_synthetic_cifar",
    "make_synthetic_mnist",
    "make_uniform_test_set",
    "quick_federation",
    "run_scenario",
    "search_thresholds",
]


def quick_federation(n_clients: int = 100, samples_per_client: int = 64,
                     rho: float = 10.0, emd_avg: float = 1.5, num_classes: int = 10,
                     dataset: str = "mnist", seed: Optional[int] = None):
    """Build a (partition, generator) pair in one call.

    A convenience wrapper used by the examples and benchmarks: creates the
    half-normal global skew with imbalance ratio *rho*, partitions it across
    *n_clients* clients with average client discrepancy *emd_avg*, and
    returns the matching synthetic image generator (``"mnist"`` or
    ``"cifar"`` flavour).
    """
    global_dist = half_normal_class_proportions(num_classes, rho)
    partition = EMDTargetPartitioner(
        n_clients=n_clients,
        samples_per_client=samples_per_client,
        emd_target=emd_avg,
        seed=seed,
    ).partition(global_dist)
    if dataset == "mnist":
        generator = make_synthetic_mnist(num_classes=num_classes, seed=seed)
    elif dataset == "cifar":
        generator = make_synthetic_cifar(num_classes=num_classes, seed=seed)
    else:
        raise ValueError("dataset must be 'mnist' or 'cifar'")
    return partition, generator
