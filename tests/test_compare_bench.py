"""Tests of the CI benchmark-regression gate (benchmarks/compare_bench.py)."""

import importlib.util
import json
import os

import pytest

_SCRIPT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                       "benchmarks", "compare_bench.py")
_spec = importlib.util.spec_from_file_location("compare_bench", _SCRIPT)
compare_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(compare_bench)


def sim_payload(vectorized=4.0, warm=5.0, eval_speedup=2.1, n_test=2000):
    return {
        "benchmark": "simulation_throughput",
        "results": [
            {"k": 32, "samples_per_client": 64,
             "speedup_vs_sequential": {"vectorized": vectorized}},
        ],
        "multi_round": {"k": 32, "rounds": 5, "warm_vs_cold_speedup": warm},
        "evaluation": {"n_test": n_test, "sequential_batch_size": 64,
                       "batched_vs_sequential_speedup": eval_speedup},
    }


def crypto_payload(encrypt=400.0):
    return {
        "benchmark": "crypto_throughput",
        "results": [
            {"key_size": 256, "n_clients": 100, "registry_length": 56,
             "speedup": {"encrypt": encrypt, "aggregate": 4.4, "decrypt": 4.8,
                         "wire": 4.7}},
        ],
    }


def registry_payload(speedup=80.0, reduction=7.8, with_reduction=True,
                     n=10000, count_packing=7):
    memory = {"streaming_peak_mb": 1.1, "materialized_clients": 10000,
              "materialized_peak_mb": 8.5,
              "reduction": reduction if with_reduction else None}
    return {
        "benchmark": "registry_scale",
        "results": [
            {"n": n, "batch_size": 4096, "num_classes": 10,
             "codebook_length": 56,
             "registration": {"batch_s": 0.004, "clients_per_s": 2.2e6,
                              "loop_clients": 10000, "loop_s": 0.35},
             "memory": memory,
             "tree": {"arity": 2, "fold_depth": 14, "flat_depth": n - 1},
             "speedup": {"register_batch": speedup}},
        ],
        "secure": {"n_clients": 1024, "key_size": 128,
                   "ciphertexts_per_client": {"default_packing": 28,
                                              "count_packing": count_packing}},
    }


def write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestExtractMetrics:
    def test_sim_metrics(self):
        metrics = compare_bench.extract_metrics(sim_payload())
        assert sorted(metrics) == [
            "sim/evaluation/batched_vs_sequential_speedup",
            "sim/k=32/speedup/vectorized",
        ]
        assert metrics["sim/k=32/speedup/vectorized"]["value"] == 4.0
        assert metrics["sim/k=32/speedup/vectorized"]["workload"] == {
            "samples_per_client": 64}

    def test_one_shot_multiround_ratio_not_gated(self):
        # warm_vs_cold divides by a single un-repeated cold-round timing;
        # the gate must never consume it
        metrics = compare_bench.extract_metrics(sim_payload())
        assert "sim/multi_round/warm_vs_cold_speedup" not in metrics

    def test_host_dependent_modes_not_gated(self):
        payload = sim_payload()
        payload["results"][0]["speedup_vs_sequential"].update(
            {"thread": 0.9, "process": 0.52})
        metrics = compare_bench.extract_metrics(payload)
        assert "sim/k=32/speedup/thread" not in metrics
        assert "sim/k=32/speedup/process" not in metrics
        assert "sim/k=32/speedup/vectorized" in metrics

    def test_crypto_metrics_keep_only_stable_ratios(self):
        metrics = compare_bench.extract_metrics(crypto_payload())
        assert metrics["crypto/key=256/speedup/encrypt"]["value"] == 400.0
        assert metrics["crypto/key=256/speedup/wire"]["value"] == 4.7
        # one-shot ms-scale timings must never be gated
        assert "crypto/key=256/speedup/aggregate" not in metrics
        assert "crypto/key=256/speedup/decrypt" not in metrics

    def test_sections_optional(self):
        payload = sim_payload()
        payload["multi_round"] = None
        payload["evaluation"] = None
        metrics = compare_bench.extract_metrics(payload)
        assert list(metrics) == ["sim/k=32/speedup/vectorized"]

    def test_workload_mismatch_is_skipped_not_gated(self, tmp_path):
        # same keys, different eval workload: the regressed-looking eval
        # ratio must be skipped instead of failing the gate
        baseline = write(tmp_path, "base.json", sim_payload(eval_speedup=2.1))
        candidate = write(tmp_path, "cand.json",
                          sim_payload(eval_speedup=0.5, n_test=200))
        assert compare_bench.main(["--baseline", baseline,
                                   "--candidate", candidate]) == 0

    def test_registry_metrics(self):
        metrics = compare_bench.extract_metrics(registry_payload())
        assert metrics["registry/n=10000/speedup/register_batch"]["value"] == 80.0
        assert metrics["registry/n=10000/speedup/register_batch"]["workload"] == {
            "batch_size": 4096, "num_classes": 10, "loop_clients": 10000}
        assert metrics["registry/n=10000/memory/reduction"]["value"] == 7.8
        assert metrics["registry/secure/packing_ciphertext_ratio"]["value"] == \
            pytest.approx(4.0)

    def test_registry_null_reduction_not_gated(self):
        # at full scale the materialised comparison run is capped, so the
        # reduction ratio is recorded as null — it must not become a metric
        metrics = compare_bench.extract_metrics(
            registry_payload(with_reduction=False, n=1000000))
        assert "registry/n=1000000/memory/reduction" not in metrics
        assert "registry/n=1000000/speedup/register_batch" in metrics

    def test_registry_gate_catches_vectorisation_regression(self, tmp_path):
        baseline = write(tmp_path, "base.json", registry_payload(speedup=80.0))
        candidate = write(tmp_path, "cand.json", registry_payload(speedup=8.0))
        assert compare_bench.main(["--baseline", baseline,
                                   "--candidate", candidate]) == 1

    def test_registry_gate_catches_packing_regression(self, tmp_path):
        baseline = write(tmp_path, "base.json", registry_payload())
        candidate = write(tmp_path, "cand.json",
                          registry_payload(count_packing=28))
        assert compare_bench.main(["--baseline", baseline,
                                   "--candidate", candidate]) == 1

    def test_unknown_payload_is_empty(self):
        assert compare_bench.extract_metrics({"benchmark": "other"}) == {}

    def test_real_committed_baselines_have_metrics(self):
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        for name in ("BENCH_sim.json", "BENCH_crypto.json",
                     "BENCH_registry.json"):
            with open(os.path.join(root, name)) as fh:
                assert compare_bench.extract_metrics(json.load(fh))


class TestGate:
    def test_within_tolerance_passes(self, tmp_path):
        baseline = write(tmp_path, "base.json", sim_payload(vectorized=4.0))
        candidate = write(tmp_path, "cand.json", sim_payload(vectorized=3.0))
        assert compare_bench.main(["--baseline", baseline,
                                   "--candidate", candidate]) == 0

    def test_regression_fails(self, tmp_path):
        baseline = write(tmp_path, "base.json", sim_payload(vectorized=4.0))
        candidate = write(tmp_path, "cand.json", sim_payload(vectorized=2.0))
        assert compare_bench.main(["--baseline", baseline,
                                   "--candidate", candidate]) == 1

    def test_override_flag_downgrades(self, tmp_path):
        baseline = write(tmp_path, "base.json", sim_payload(vectorized=4.0))
        candidate = write(tmp_path, "cand.json", sim_payload(vectorized=1.0))
        assert compare_bench.main(["--baseline", baseline,
                                   "--candidate", candidate,
                                   "--allow-regression"]) == 0

    def test_only_shared_metrics_compared(self, tmp_path):
        # smoke candidate without the extra sections never fails on them
        candidate_payload = sim_payload(vectorized=3.9)
        candidate_payload.pop("multi_round")
        candidate_payload.pop("evaluation")
        baseline = write(tmp_path, "base.json", sim_payload())
        candidate = write(tmp_path, "cand.json", candidate_payload)
        assert compare_bench.main(["--baseline", baseline,
                                   "--candidate", candidate]) == 0

    def test_custom_tolerance(self, tmp_path):
        baseline = write(tmp_path, "base.json", sim_payload(vectorized=4.0))
        candidate = write(tmp_path, "cand.json", sim_payload(vectorized=3.9))
        assert compare_bench.main(["--baseline", baseline,
                                   "--candidate", candidate,
                                   "--tolerance", "0.0"]) == 1

    def test_no_shared_metrics_is_an_error(self, tmp_path):
        baseline = write(tmp_path, "base.json", sim_payload())
        candidate = write(tmp_path, "cand.json", crypto_payload())
        assert compare_bench.main(["--baseline", baseline,
                                   "--candidate", candidate]) == 2

    def test_invalid_tolerance(self, tmp_path):
        baseline = write(tmp_path, "base.json", sim_payload())
        candidate = write(tmp_path, "cand.json", sim_payload())
        assert compare_bench.main(["--baseline", baseline,
                                   "--candidate", candidate,
                                   "--tolerance", "1.5"]) == 2


class TestLedgerTrajectories:
    class FakeRunInfo:
        def __init__(self, run_id, bench):
            self.run_id = run_id
            self.bench = bench

    def test_trajectories_across_runs(self):
        runs = [
            self.FakeRunInfo("run1", {
                "git_sha": "a" * 40,
                "bench": {"BENCH_sim": sim_payload(vectorized=4.0)},
            }),
            self.FakeRunInfo("run2", {
                "git_sha": "b" * 40,
                "bench": {"BENCH_sim": sim_payload(vectorized=4.4)},
            }),
        ]
        trajectories = compare_bench.ledger_trajectories(runs)
        key = "sim/k=32/speedup/vectorized"
        assert [v for _, _, v in trajectories[key]] == [4.0, 4.4]
        assert trajectories[key][0][:2] == ("run1", "a" * 9)

    def test_runs_without_bench_contribute_nothing(self):
        runs = [
            self.FakeRunInfo("bare", None),
            self.FakeRunInfo("skipped", {
                "git_sha": None,
                "bench": {"BENCH_sim": {"skipped": True, "bytes": 1 << 20}},
            }),
        ]
        assert compare_bench.ledger_trajectories(runs) == {}

    def test_ledger_cli_mode(self, tmp_path, capsys):
        import sys
        sys.path.insert(0, os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src"))
        from repro.ledger import RunLedger

        path = str(tmp_path / "runs.db")
        with RunLedger(path) as ledger:
            ledger.begin_run("demo", {}, {}, 1, bench={
                "git_sha": "c" * 40,
                "bench": {"BENCH_sim": sim_payload(vectorized=3.5)}})
        assert compare_bench.main(["--ledger", path]) == 0
        out = capsys.readouterr().out
        assert "sim/k=32/speedup/vectorized" in out
        assert "3.5x" in out

    def test_missing_ledger_is_an_error(self, tmp_path, capsys):
        assert compare_bench.main(
            ["--ledger", str(tmp_path / "absent.db")]) == 2
        assert "no ledger" in capsys.readouterr().err

    def test_legacy_mode_requires_both_files(self, capsys):
        with pytest.raises(SystemExit):
            compare_bench.main(["--baseline", "only.json"])
