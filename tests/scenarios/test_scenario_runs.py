"""End-to-end scenario runs through the simulation.

Covers the tentpole guarantees: the zero-fault identity (an empty scenario
leaves every executor back-end bit-identical to a scenario-free run), full
reproducibility of injected faults across repeated runs and across back-ends,
partial-round aggregation with the participation floor, label drift with
(secure) re-registration, and the robustness report.
"""

import numpy as np
import pytest

from repro.core import DubheConfig, DubheSelector, GreedySelector, RandomSelector
from repro.data.partition import EMDTargetPartitioner
from repro.data.skew import half_normal_class_proportions
from repro.data.synthetic import make_synthetic_mnist, make_uniform_test_set
from repro.federated.client import LocalTrainingConfig
from repro.federated.simulation import FederatedConfig, FederatedSimulation
from repro.nn.models import MLP
from repro.scenarios import (
    FAILURE_CAUSES,
    AvailabilitySpec,
    ChurnSpec,
    DriftSpec,
    DropoutSpec,
    ScenarioSpec,
    StragglerSpec,
    compare_selectors,
    run_scenario,
)

TOL = 1e-10
BACKENDS = ("sequential", "vectorized", "parallel")

#: churn + stragglers + dropouts, the acceptance scenario; client 0 joining
#: far in the future guarantees at least one deterministic fault
FAULTY = ScenarioSpec(
    churn=ChurnSpec(joins={0: 100}, leaves={5: 2}),
    availability=AvailabilitySpec(offline_probability=0.15),
    stragglers=StragglerSpec(probability=0.3, mean_delay=3.0, deadline=4.0),
    dropouts=DropoutSpec(probability=0.2),
    seed=11,
)


class RoundRobinSelector:
    """Deterministic cohort schedule, independent of any RNG."""

    def __init__(self, n_clients: int, k: int):
        self.n_clients = n_clients
        self.k = k

    def select(self, round_index: int):
        start = (round_index * self.k) % self.n_clients
        return [(start + i) % self.n_clients for i in range(self.k)]


@pytest.fixture(scope="module")
def federation():
    generator = make_synthetic_mnist(seed=0)
    global_dist = half_normal_class_proportions(10, 5.0)
    partition = EMDTargetPartitioner(12, 20, 1.0, seed=0).partition(global_dist)
    test_set = make_uniform_test_set(generator, samples_per_class=4, seed=1)
    return generator, partition, test_set


def make_sim(federation, mode="sequential", scenario=None, rounds=3,
             selector=None):
    generator, partition, test_set = federation
    config = FederatedConfig(
        rounds=rounds,
        executor_mode=mode,
        num_workers=2 if mode == "parallel" else None,
        local=LocalTrainingConfig(batch_size=8, learning_rate=1e-3),
        seed=0,
        scenario=scenario,
    )
    return FederatedSimulation(
        partition=partition,
        generator=generator,
        model_factory=lambda: MLP(64, 10, hidden=(16,), seed=7),
        selector=selector or RoundRobinSelector(partition.n_clients, 4),
        test_set=test_set,
        config=config,
    )


def participation_log(history):
    """The (planned, actual, failures) trace the acceptance check compares."""
    return [(r.selected_clients, r.participants, dict(r.failures))
            for r in history.records]


class TestZeroFaultIdentity:
    @pytest.mark.parametrize("mode", BACKENDS)
    def test_empty_scenario_is_bit_identical(self, federation, mode):
        with make_sim(federation, mode, scenario=None) as bare, \
                make_sim(federation, mode, scenario=ScenarioSpec()) as empty:
            bare_history = bare.run()
            empty_history = empty.run()
            np.testing.assert_allclose(bare_history.accuracies(),
                                       empty_history.accuracies(),
                                       rtol=0, atol=TOL)
            np.testing.assert_allclose(bare_history.population_biases(),
                                       empty_history.population_biases(),
                                       rtol=0, atol=TOL)
            bare_state = bare.server.global_state()
            empty_state = empty.server.global_state()
            for key in bare_state:
                np.testing.assert_allclose(empty_state[key], bare_state[key],
                                           rtol=0, atol=TOL)
            for record in empty_history.records:
                assert record.participants == record.selected_clients
                assert record.failures == {}
                assert not record.aggregation_skipped
                assert record.round_delay == 0.0

    def test_min_participation_alone_preserves_identity(self, federation):
        # a pure aggregation-policy spec injects nothing and must not perturb
        with make_sim(federation, scenario=None) as bare, \
                make_sim(federation,
                         scenario=ScenarioSpec(min_participation=0.5)) as floor:
            np.testing.assert_allclose(bare.run().accuracies(),
                                       floor.run().accuracies(),
                                       rtol=0, atol=TOL)


class TestFaultedRuns:
    @pytest.mark.parametrize("mode", BACKENDS)
    def test_faulty_run_completes_and_reports(self, federation, mode):
        with make_sim(federation, mode, scenario=FAULTY) as sim:
            history = sim.run()
        assert len(history) == 3
        totals = history.failure_totals()
        assert totals.get("not_joined", 0) >= 1  # client 0 never joined
        for record in history.records:
            assert set(record.participants) <= set(record.selected_clients)
            assert set(record.failures.values()) <= set(FAILURE_CAUSES)
            assert set(record.participants).isdisjoint(record.failures)
            # the paper's metrics are reported for planned AND actual cohorts
            assert 0.0 <= record.population_bias <= 2.0
            assert record.actual_population_bias is not None
            assert record.test_accuracy is not None

    def test_repeated_runs_are_identical(self, federation):
        logs, accuracies = [], []
        for _ in range(2):
            with make_sim(federation, scenario=FAULTY) as sim:
                history = sim.run()
                logs.append(participation_log(history))
                accuracies.append(history.accuracies())
        assert logs[0] == logs[1]
        np.testing.assert_allclose(accuracies[0], accuracies[1], rtol=0, atol=0)

    def test_fault_parity_across_backends(self, federation):
        logs, finals = {}, {}
        for mode in BACKENDS:
            with make_sim(federation, mode, scenario=FAULTY) as sim:
                history = sim.run()
                logs[mode] = participation_log(history)
                finals[mode] = history.accuracies()
        for mode in BACKENDS[1:]:
            assert logs[mode] == logs["sequential"]
            np.testing.assert_allclose(finals[mode], finals["sequential"],
                                       rtol=0, atol=TOL)

    def test_survivors_match_sequential_of_survivors(self, federation):
        # dropping rows of the batched cohort must equal never training them
        scenario = ScenarioSpec(dropouts=DropoutSpec(0.4), seed=23)
        with make_sim(federation, "vectorized", scenario=scenario) as faulted, \
                make_sim(federation, "sequential", scenario=scenario) as reference:
            faulted.run()
            reference.run()
            faulted_state = faulted.server.global_state()
            reference_state = reference.server.global_state()
            for key in reference_state:
                np.testing.assert_allclose(faulted_state[key],
                                           reference_state[key],
                                           rtol=0, atol=TOL)


class TestPartialRoundPolicy:
    def test_total_dropout_skips_every_round(self, federation):
        scenario = ScenarioSpec(dropouts=DropoutSpec(1.0),
                                min_participation=0.5, seed=3)
        with make_sim(federation, scenario=scenario) as sim:
            history = sim.run()
            assert history.skipped_round_count() == 3
            assert sim.server.rounds_skipped == 3
            assert sim.server.rounds_completed == 0
            # the global model was carried forward untouched
            initial = MLP(64, 10, hidden=(16,), seed=7).state_dict()
            final = sim.server.global_state()
            for key in initial:
                np.testing.assert_array_equal(final[key], initial[key])
            for record in history.records:
                assert record.aggregation_skipped
                assert record.actual_clients == ()
                assert np.isnan(record.actual_population_bias)

    def test_floor_zero_aggregates_any_survivor(self, federation):
        scenario = ScenarioSpec(
            availability=AvailabilitySpec(offline_probability=0.5), seed=9)
        with make_sim(federation, scenario=scenario) as sim:
            history = sim.run()
            for record in history.records:
                assert record.aggregation_skipped == (not record.participants)


class TestLabelDrift:
    def _dubhe(self, partition, k=4, seed=0):
        config = DubheConfig(num_classes=10, participants_per_round=k,
                             thresholds={1: 0.7, 2: 0.1, 10: 0.0},
                             key_size=128)
        return DubheSelector(partition.client_distributions(), config, seed=seed)

    def test_drift_rolls_partition_and_reregisters(self, federation):
        generator, partition, test_set = federation
        selector = self._dubhe(partition)
        original_counts = partition.client_class_counts.copy()
        original_registry = np.sum(
            [r.registry for r in selector.registrations], axis=0)
        scenario = ScenarioSpec(drift=DriftSpec(period=2, shift=1), seed=5)
        with make_sim(federation, scenario=scenario, selector=selector) as sim:
            history = sim.run()
            assert [r.drift_applied for r in history.records] == [
                False, False, True]
            np.testing.assert_array_equal(
                sim.partition.client_class_counts,
                np.roll(original_counts, 1, axis=1))
            np.testing.assert_allclose(
                selector.client_distributions,
                sim.partition.client_distributions())
            refreshed_registry = np.sum(
                [r.registry for r in selector.registrations], axis=0)
            assert not np.array_equal(refreshed_registry, original_registry)
        # the source partition object is untouched (drift replaces, not mutates)
        np.testing.assert_array_equal(partition.client_class_counts,
                                      original_counts)

    def test_drift_invalidates_cached_clients(self, federation):
        scenario = ScenarioSpec(drift=DriftSpec(period=1, shift=2), seed=5)
        with make_sim(federation, scenario=scenario, rounds=2) as sim:
            sim.run_round(0)
            before = sim.client(1).dataset
            sim.run_round(1)  # drift fires before this round
            after = sim.client(1).dataset
            assert before is not after
            assert not np.array_equal(np.sort(np.asarray(before.y)),
                                      np.sort(np.asarray(after.y)))

    def test_secure_reregistration_smoke(self, federation):
        generator, partition, test_set = federation
        selector = self._dubhe(partition)
        scenario = ScenarioSpec(
            drift=DriftSpec(period=2, shift=1, secure_reregistration=True,
                            key_size=128), seed=5)
        with make_sim(federation, scenario=scenario, selector=selector) as sim:
            history = sim.run()  # raises if decrypt != plaintext registry
            assert sum(r.drift_applied for r in history.records) == 1

    def test_secure_reregistration_needs_dubhe_selector(self, federation):
        scenario = ScenarioSpec(
            drift=DriftSpec(period=1, shift=1, secure_reregistration=True),
            seed=5)
        with make_sim(federation, scenario=scenario, rounds=2) as sim:
            sim.run_round(0)
            with pytest.raises(RuntimeError, match="Dubhe"):
                sim.run_round(1)


class TestReports:
    def test_run_scenario_report(self, federation):
        with make_sim(federation, scenario=FAULTY) as sim:
            report = run_scenario(sim, name="acceptance")
        assert report.name == "acceptance"
        assert report.rounds == 3
        assert report.total_failures() >= 1
        assert np.isfinite(report.final_accuracy())
        assert np.isfinite(report.mean_actual_bias())
        summary = report.summary()
        assert summary["skipped_rounds"] == 0
        assert 0.0 <= summary["baseline_bias"] <= 2.0

    def test_compare_selectors_under_faults(self, federation):
        generator, partition, test_set = federation
        distributions = partition.client_distributions()

        def build(name):
            selector = {
                "greedy": lambda: GreedySelector(distributions, 4, seed=0),
                "random": lambda: RandomSelector(distributions, 4, seed=0),
            }[name]()
            return make_sim(federation, scenario=FAULTY, rounds=2,
                            selector=selector)

        reports = compare_selectors(build, names=("greedy", "random"))
        assert set(reports) == {"greedy", "random"}
        for report in reports.values():
            assert report.rounds == 2
            assert np.isfinite(report.final_accuracy())
