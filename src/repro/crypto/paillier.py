"""The Paillier additively homomorphic cryptosystem.

This is a from-scratch implementation of the scheme used by Dubhe (and by
secure FL frameworks such as FATE) to exchange label-distribution registries
without revealing them to the server.

Scheme summary
--------------
* **Key generation.** Choose primes ``p, q`` of equal length, let
  ``n = p * q`` and ``λ = lcm(p-1, q-1)``.  With the standard simplification
  ``g = n + 1`` the public key is ``n`` and the private key is ``(λ, μ)``
  where ``μ = λ^{-1} mod n``.
* **Encryption.** ``Enc(m; r) = g^m · r^n mod n²`` with a random
  ``r ∈ Z_n*``.
* **Decryption.** ``Dec(c) = L(c^λ mod n²) · μ mod n`` with
  ``L(x) = (x - 1) / n``.
* **Homomorphism.** ``Dec(Enc(a) · Enc(b) mod n²) = a + b mod n`` and
  ``Dec(Enc(a)^k mod n²) = k·a mod n``.

The implementation also provides the usual engineering refinements found in
production libraries: CRT-accelerated decryption, ciphertext
re-randomisation (obfuscation), and negative-number support via the upper
half of ``Z_n``.
"""

from __future__ import annotations

import math
import random
import secrets
import threading
from dataclasses import dataclass, field
from typing import Optional

from .primes import generate_distinct_primes

__all__ = [
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "PaillierKeypair",
    "NoisePool",
    "generate_keypair",
    "DEFAULT_KEY_SIZE",
    "PAPER_KEY_SIZE",
]

#: Default modulus size (bits) used throughout the test-suite and reduced
#: scale benchmarks.  Large enough to hold encoded distribution values with
#: a wide safety margin while keeping the suite fast.
DEFAULT_KEY_SIZE = 256

#: Key size used in the paper's overhead study (§6.4), matching FATE and
#: BatchCrypt deployments.
PAPER_KEY_SIZE = 2048


class PaillierPublicKey:
    """Public half of a Paillier keypair.

    Encapsulates the modulus ``n`` and provides raw (integer) encryption and
    the homomorphic primitives on raw ciphertexts.  Higher-level float/vector
    handling lives in :mod:`repro.crypto.encoding` and
    :mod:`repro.crypto.vector`.
    """

    def __init__(self, n: int):
        if n <= 3:
            raise ValueError("invalid Paillier modulus")
        self.n = n
        self.nsquare = n * n
        self.g = n + 1
        # Maximum plaintext magnitude; values above max_int (as |x|) risk
        # overflow once sums of many ciphertexts are decrypted.
        self.max_int = n // 3 - 1

    # -- encryption ---------------------------------------------------------

    def get_random_lt_n(self, rng: Optional[random.Random] = None,
                        check_coprime: bool = True) -> int:
        """Draw a random element of ``Z_n*`` used as encryption noise.

        With ``check_coprime=False`` the gcd rejection loop is skipped.  For a
        well-formed modulus (a product of two large primes) a uniform draw
        from ``[1, n)`` fails to be coprime with probability
        ``(p + q - 1)/n ≈ 2^{1-n.bit_length()/2}`` — negligible for any real
        key size — so production deployments (FATE's batched encryptors)
        sample without the gcd check.
        """
        while True:
            if rng is None:
                r = secrets.randbelow(self.n - 1) + 1
            else:
                r = rng.randrange(1, self.n)
            if not check_coprime or math.gcd(r, self.n) == 1:
                return r

    def raw_encrypt(self, plaintext: int, r_value: Optional[int] = None,
                    rng: Optional[random.Random] = None,
                    rn_value: Optional[int] = None,
                    obfuscate: bool = True) -> int:
        """Encrypt an integer plaintext already reduced into ``Z_n``.

        With ``g = n + 1`` the term ``g^m mod n²`` simplifies to
        ``1 + n·m mod n²``, avoiding one modular exponentiation.

        Parameters
        ----------
        r_value:
            Explicit noise ``r``; ``r^n mod n²`` is still computed here.
        rn_value:
            Precomputed ``r^n mod n²`` (e.g. from a :class:`NoisePool`),
            skipping the modular exponentiation entirely — the dominant cost
            of Paillier encryption.
        obfuscate:
            When ``False`` (and no noise is supplied) the deterministic,
            noise-free ciphertext ``g^m mod n²`` is returned; it must be
            re-randomised with :meth:`raw_obfuscate` before transmission.
        """
        if not isinstance(plaintext, int):
            raise TypeError(f"plaintext must be int, got {type(plaintext).__name__}")
        m = plaintext % self.n
        gm = (1 + self.n * m) % self.nsquare
        if rn_value is not None:
            return (gm * rn_value) % self.nsquare
        if r_value is None and not obfuscate:
            return gm
        r = r_value if r_value is not None else self.get_random_lt_n(rng)
        rn = pow(r, self.n, self.nsquare)
        return (gm * rn) % self.nsquare

    def raw_obfuscate(self, ciphertext: int, rn_value: Optional[int] = None,
                      rng: Optional[random.Random] = None) -> int:
        """Re-randomise a raw ciphertext by multiplying in fresh noise.

        Used for deferred obfuscation: encrypt cheaply with
        ``raw_encrypt(..., obfuscate=False)``, then apply noise (possibly from
        a :class:`NoisePool`) just before the ciphertext leaves the client.
        """
        if rn_value is None:
            r = self.get_random_lt_n(rng)
            rn_value = pow(r, self.n, self.nsquare)
        return (ciphertext * rn_value) % self.nsquare

    # -- homomorphic primitives on raw ciphertexts --------------------------

    def raw_add(self, c1: int, c2: int) -> int:
        """Homomorphic addition of two raw ciphertexts."""
        return (c1 * c2) % self.nsquare

    def raw_add_plain(self, c: int, plaintext: int) -> int:
        """Homomorphically add a plaintext integer to a raw ciphertext."""
        gm = (1 + self.n * (plaintext % self.n)) % self.nsquare
        return (c * gm) % self.nsquare

    def raw_mul(self, c: int, scalar: int) -> int:
        """Homomorphic multiplication of a raw ciphertext by a plaintext scalar."""
        s = scalar % self.n
        return pow(c, s, self.nsquare)

    # -- misc ---------------------------------------------------------------

    @property
    def key_size(self) -> int:
        """Modulus size in bits."""
        return self.n.bit_length()

    def ciphertext_bytes(self) -> int:
        """Wire size of one ciphertext in bytes (an element of ``Z_{n²}``)."""
        return (self.nsquare.bit_length() + 7) // 8

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PaillierPublicKey) and other.n == self.n

    def __hash__(self) -> int:
        return hash(("PaillierPublicKey", self.n))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PaillierPublicKey(bits={self.key_size})"


class NoisePool:
    """A pool of precomputed encryption noise terms ``r^n mod n²``.

    The modular exponentiation ``pow(r, n, n²)`` dominates Paillier
    encryption cost (the ``g^m`` term is a single multiplication thanks to
    ``g = n + 1``).  Because the noise is independent of the plaintext it can
    be generated ahead of time — during idle periods, on other cores, or
    between protocol rounds — and consumed in O(1) per encryption.  This is
    the "advance obfuscation" optimisation of FATE/BatchCrypt-style
    deployments.

    The pool is thread-safe so a shared instance can feed a thread-pool
    encryptor (:mod:`repro.crypto.batch`).

    Parameters
    ----------
    public_key:
        Key whose modulus the noise is generated for.
    rng:
        Optional seeded RNG for reproducible pools in tests; secure
        randomness is used when omitted.
    batch_size:
        How many terms :meth:`take` generates at once when the pool runs dry.
    check_coprime:
        Forwarded to :meth:`PaillierPublicKey.get_random_lt_n`; the default
        ``False`` uses the fast path that skips the gcd rejection loop.
    """

    def __init__(self, public_key: PaillierPublicKey,
                 rng: Optional[random.Random] = None,
                 batch_size: int = 64,
                 check_coprime: bool = False):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.public_key = public_key
        self.rng = rng
        self.batch_size = batch_size
        self.check_coprime = check_coprime
        self.generated = 0
        self._pool: list[int] = []
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._pool)

    def _generate(self, count: int) -> list[int]:
        pk = self.public_key
        return [
            pow(pk.get_random_lt_n(self.rng, check_coprime=self.check_coprime),
                pk.n, pk.nsquare)
            for _ in range(count)
        ]

    def refill(self, count: int) -> None:
        """Batch-generate *count* noise terms into the pool."""
        if count < 0:
            raise ValueError("count must be non-negative")
        fresh = self._generate(count)
        with self._lock:
            self._pool.extend(fresh)
            self.generated += count

    def take(self) -> int:
        """Pop one precomputed ``r^n mod n²``, refilling a batch if empty."""
        with self._lock:
            if self._pool:
                return self._pool.pop()
        self.refill(self.batch_size)
        return self.take()

    def take_many(self, count: int) -> list[int]:
        """Pop *count* noise terms, generating any shortfall in one batch."""
        if count < 0:
            raise ValueError("count must be non-negative")
        with self._lock:
            grabbed = self._pool[-count:] if count else []
            del self._pool[len(self._pool) - len(grabbed):]
        shortfall = count - len(grabbed)
        if shortfall:
            grabbed.extend(self._generate(shortfall))
            with self._lock:
                self.generated += shortfall
        return grabbed


class PaillierPrivateKey:
    """Private half of a Paillier keypair.

    Decryption uses the Chinese Remainder Theorem over the prime factors,
    which is roughly 4x faster than the textbook formula and is what
    production libraries (python-paillier, FATE) do.
    """

    def __init__(self, public_key: PaillierPublicKey, p: int, q: int):
        if p * q != public_key.n:
            raise ValueError("p * q does not match the public modulus")
        if p == q:
            raise ValueError("p and q must be distinct")
        self.public_key = public_key
        # order so behaviour is independent of argument order
        self.p, self.q = (p, q) if p < q else (q, p)
        self.psquare = self.p * self.p
        self.qsquare = self.q * self.q
        self.p_inverse = pow(self.p, -1, self.q)
        self.hp = self._h_function(self.p, self.psquare)
        self.hq = self._h_function(self.q, self.qsquare)

    # -- helpers ------------------------------------------------------------

    def _h_function(self, x: int, xsquare: int) -> int:
        """Precompute ``L(g^{x-1} mod x²)^{-1} mod x`` for CRT decryption."""
        g = self.public_key.g
        return pow(self._l_function(pow(g, x - 1, xsquare), x), -1, x)

    @staticmethod
    def _l_function(u: int, n: int) -> int:
        """The Paillier ``L`` function, ``L(u) = (u - 1) // n``."""
        return (u - 1) // n

    @staticmethod
    def _crt(mp: int, mq: int, p: int, q: int, p_inverse: int) -> int:
        """Recombine residues mod p and mod q into a value mod p*q."""
        u = ((mq - mp) * p_inverse) % q
        return mp + u * p

    # -- decryption ---------------------------------------------------------

    def raw_decrypt(self, ciphertext: int) -> int:
        """Decrypt a raw ciphertext to an integer in ``[0, n)``."""
        if not isinstance(ciphertext, int):
            raise TypeError(f"ciphertext must be int, got {type(ciphertext).__name__}")
        c = ciphertext % self.public_key.nsquare
        mp = (self._l_function(pow(c, self.p - 1, self.psquare), self.p) * self.hp) % self.p
        mq = (self._l_function(pow(c, self.q - 1, self.qsquare), self.q) * self.hq) % self.q
        return self._crt(mp, mq, self.p, self.q, self.p_inverse)

    def decrypt_signed(self, ciphertext: int) -> int:
        """Decrypt and map the upper half of ``Z_n`` back to negative integers."""
        value = self.raw_decrypt(ciphertext)
        n = self.public_key.n
        if value > n // 2:
            value -= n
        return value

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PaillierPrivateKey)
            and other.p == self.p
            and other.q == self.q
        )

    def __hash__(self) -> int:
        return hash(("PaillierPrivateKey", self.p, self.q))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PaillierPrivateKey(bits={self.public_key.key_size})"


@dataclass(frozen=True)
class PaillierKeypair:
    """A public/private keypair produced by :func:`generate_keypair`."""

    public_key: PaillierPublicKey
    private_key: PaillierPrivateKey
    key_size: int = field(default=DEFAULT_KEY_SIZE)

    def __iter__(self):
        # allow ``pk, sk = generate_keypair(...)`` style unpacking
        yield self.public_key
        yield self.private_key


def generate_keypair(key_size: int = DEFAULT_KEY_SIZE,
                     rng: Optional[random.Random] = None) -> PaillierKeypair:
    """Generate a Paillier keypair with an *key_size*-bit modulus.

    Parameters
    ----------
    key_size:
        Bit length of the modulus ``n``.  The paper's overhead study uses
        2048-bit keys (:data:`PAPER_KEY_SIZE`); tests use a smaller modulus
        for speed — the homomorphic algebra is identical.
    rng:
        Optional seeded :class:`random.Random` for reproducible keys in tests.
        When omitted, cryptographically secure randomness is used.
    """
    if key_size < 16:
        raise ValueError(f"key_size too small: {key_size}")
    n = 0
    while n.bit_length() != key_size:
        p, q = generate_distinct_primes(key_size // 2, rng=rng)
        n = p * q
    public = PaillierPublicKey(n)
    private = PaillierPrivateKey(public, p, q)
    return PaillierKeypair(public, private, key_size)
