"""Liveness tests: the heartbeat state machine detects half-open connections.

A TCP peer that stops reading and writing (a yanked cable, a frozen VM)
leaves a *half-open* connection: the server's writes succeed into the kernel
buffer, so nothing fails until the round deadline.  The heartbeat protocol
closes that gap — a connection silent for ``heartbeat_interval *
heartbeat_limit`` seconds is declared dead, its pending reply future fails
immediately, and the round completes long before ``round_timeout``.
"""

import socket
import threading
import time

import pytest

from repro import FederatedConfig, Session
from repro.core.config import TransportConfig
from repro.federated.client import LocalTrainingConfig
from repro.transport import SocketTransport, TransportClient
from repro.transport.messages import Register, encode_message

RECIPE = dict(n_clients=4, participants=2, samples_per_client=12, seed=0)


@pytest.fixture
def donor():
    session = Session(FederatedConfig(
        rounds=1, seed=0,
        local=LocalTrainingConfig(batch_size=4, local_epochs=1),
    )).with_recipe("repro.ledger.recipes:quick_mlp", **RECIPE)
    simulation = session.build()
    yield simulation
    session.close()


class TestHalfOpenDetection:
    def test_silent_client_fails_the_round_well_before_the_deadline(self, donor):
        transport = SocketTransport(TransportConfig(
            kind="socket", round_timeout=30.0, connect_timeout=10.0,
            heartbeat_interval=0.2, heartbeat_limit=3))
        host, port = transport.start()
        # a half-open peer: registers, then never reads or writes again
        zombie = socket.create_connection((host, port))
        try:
            zombie.sendall(encode_message(Register(0, 10, 12)))
            start = time.monotonic()
            states = transport.run_round(
                [donor.client(0)], donor.server.new_client_model,
                donor.server.global_state(), LocalTrainingConfig(),
                round_index=0)
            elapsed = time.monotonic() - start
        finally:
            zombie.close()
            transport.close()

        # death comes from 3 missed 0.2s heartbeats, not the 30s deadline
        assert elapsed < 5.0, (
            f"half-open client stalled the round for {elapsed:.1f}s")
        assert states == []
        assert transport.last_round_failures == {0: "offline"}
        assert transport.last_round_disconnects == {0: "heartbeat"}
        assert transport.disconnects[0] == "heartbeat"

    def test_responsive_client_survives_aggressive_heartbeats(self, donor):
        # frequent heartbeats during real training: the client answers from
        # its read loop (training runs off-loop) and is never declared dead
        transport = SocketTransport(TransportConfig(
            kind="socket", round_timeout=30.0, connect_timeout=10.0,
            heartbeat_interval=0.25, heartbeat_limit=4))
        host, port = transport.start()
        peer = TransportClient(donor.client(1), donor.server.new_client_model,
                               host, port)
        thread = threading.Thread(target=peer.run, daemon=True)
        thread.start()
        try:
            states = transport.run_round(
                [donor.client(1)], donor.server.new_client_model,
                donor.server.global_state(), LocalTrainingConfig(),
                round_index=0)
        finally:
            transport.close()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert len(states) == 1
        assert transport.last_round_failures == {}
        assert 1 not in transport.disconnects or \
            transport.disconnects[1] != "heartbeat"

    def test_health_state_machine_degrades_then_dies(self, donor):
        transport = SocketTransport(TransportConfig(
            kind="socket", round_timeout=30.0, connect_timeout=10.0,
            heartbeat_interval=0.15, heartbeat_limit=4))
        host, port = transport.start()
        zombie = socket.create_connection((host, port))
        try:
            zombie.sendall(encode_message(Register(2, 10, 12)))
            deadline = time.monotonic() + 5.0
            while (transport.client_health(2) != "healthy"
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert transport.client_health(2) == "healthy"
            # one silent interval: degraded but still connected
            seen_degraded = False
            while time.monotonic() < deadline:
                health = transport.client_health(2)
                if health == "degraded":
                    seen_degraded = True
                if health is None:  # declared dead and removed
                    break
                time.sleep(0.01)
            assert seen_degraded, "session never transitioned to degraded"
            assert transport.client_health(2) is None
            assert transport.disconnects[2] == "heartbeat"
        finally:
            zombie.close()
            transport.close()

    def test_heartbeats_disabled_by_zero_interval(self, donor):
        # interval 0 turns probing off entirely: a silent peer survives
        # (the round deadline is then the only liveness mechanism)
        transport = SocketTransport(TransportConfig(
            kind="socket", round_timeout=1.0, connect_timeout=10.0,
            heartbeat_interval=0.0))
        host, port = transport.start()
        zombie = socket.create_connection((host, port))
        try:
            zombie.sendall(encode_message(Register(3, 10, 12)))
            states = transport.run_round(
                [donor.client(3)], donor.server.new_client_model,
                donor.server.global_state(), LocalTrainingConfig(),
                round_index=0)
            # still connected at the deadline: a straggler, not offline
            assert states == []
            assert transport.last_round_failures == {0: "straggler"}
            assert transport.client_health(3) == "healthy"
        finally:
            zombie.close()
            transport.close()
