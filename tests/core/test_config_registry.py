"""Tests for DubheConfig and the registry codebook / Algorithm 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples
from hypothesis.extra import numpy as hnp

from repro.core.config import GROUP1_REFERENCE_SET, GROUP2_REFERENCE_SET, DubheConfig
from repro.core.registry import ClientCategory, RegistryCodebook
from repro.data.distributions import normalize_counts


def group1_config(**overrides):
    defaults = dict(
        num_classes=10,
        reference_set=GROUP1_REFERENCE_SET,
        thresholds={1: 0.7, 2: 0.1, 10: 0.0},
        participants_per_round=20,
    )
    defaults.update(overrides)
    return DubheConfig(**defaults)


class TestDubheConfig:
    def test_paper_group1_registry_length_is_56(self):
        codebook = RegistryCodebook(group1_config())
        assert codebook.length == 10 + 45 + 1 == 56

    def test_paper_group2_registry_length_is_53(self):
        config = DubheConfig(
            num_classes=52,
            reference_set=GROUP2_REFERENCE_SET,
            thresholds={1: 0.5, 52: 0.0},
            participants_per_round=20,
        )
        codebook = RegistryCodebook(config)
        assert codebook.length == 52 + 1 == 53

    def test_sigma_c_is_implied(self):
        config = DubheConfig(num_classes=10, reference_set=(1, 10), thresholds={1: 0.5})
        assert config.thresholds[10] == 0.0
        assert config.has_all_thresholds()

    def test_reference_set_must_contain_c(self):
        with pytest.raises(ValueError):
            DubheConfig(num_classes=10, reference_set=(1, 2))

    def test_invalid_reference_entries(self):
        with pytest.raises(ValueError):
            DubheConfig(num_classes=10, reference_set=(0, 10))
        with pytest.raises(ValueError):
            DubheConfig(num_classes=10, reference_set=(11, 10))
        with pytest.raises(ValueError):
            DubheConfig(num_classes=10, reference_set=())

    def test_invalid_thresholds(self):
        with pytest.raises(ValueError):
            DubheConfig(num_classes=10, reference_set=(1, 10), thresholds={3: 0.5})
        with pytest.raises(ValueError):
            DubheConfig(num_classes=10, reference_set=(1, 10), thresholds={1: 1.5})
        with pytest.raises(ValueError):
            DubheConfig(num_classes=10, reference_set=(1, 10), thresholds={10: 0.3})

    def test_invalid_scalars(self):
        with pytest.raises(ValueError):
            DubheConfig(num_classes=1)
        with pytest.raises(ValueError):
            group1_config(participants_per_round=0)
        with pytest.raises(ValueError):
            group1_config(tentative_selections=0)
        with pytest.raises(ValueError):
            group1_config(key_size=8)

    def test_threshold_for(self):
        config = group1_config()
        assert config.threshold_for(1) == pytest.approx(0.7)
        with pytest.raises(KeyError):
            config.threshold_for(5)
        incomplete = DubheConfig(num_classes=10, reference_set=(1, 10))
        with pytest.raises(KeyError):
            incomplete.threshold_for(1)

    def test_with_thresholds_copy(self):
        config = DubheConfig(num_classes=10, reference_set=(1, 10))
        assert not config.has_all_thresholds()
        settled = config.with_thresholds({1: 0.6, 10: 0.0})
        assert settled.has_all_thresholds()
        assert settled.participants_per_round == config.participants_per_round


class TestCodebookGeometry:
    def test_block_lengths(self):
        codebook = RegistryCodebook(group1_config())
        assert codebook.block_length(1) == 10
        assert codebook.block_length(2) == 45
        assert codebook.block_length(10) == 1

    def test_block_slices_are_contiguous(self):
        codebook = RegistryCodebook(group1_config())
        assert codebook.block_slice(1) == slice(0, 10)
        assert codebook.block_slice(2) == slice(10, 55)
        assert codebook.block_slice(10) == slice(55, 56)

    def test_index_category_roundtrip(self):
        codebook = RegistryCodebook(group1_config())
        for index in range(codebook.length):
            category = codebook.category_of(index)
            assert codebook.index_of(category) == index

    def test_index_of_sorts_input(self):
        codebook = RegistryCodebook(group1_config())
        assert codebook.index_of([3, 0]) == codebook.index_of(ClientCategory((0, 3)))

    def test_unknown_category_rejected(self):
        codebook = RegistryCodebook(group1_config())
        with pytest.raises(KeyError):
            codebook.index_of([0, 1, 2])  # 3 dominating classes not in G
        with pytest.raises(IndexError):
            codebook.category_of(56)
        with pytest.raises(KeyError):
            codebook.block_length(7)
        with pytest.raises(KeyError):
            codebook.block_slice(7)

    def test_requires_settled_thresholds(self):
        with pytest.raises(ValueError):
            RegistryCodebook(DubheConfig(num_classes=10, reference_set=(1, 10)))

    def test_client_category_validation(self):
        with pytest.raises(ValueError):
            ClientCategory(())
        with pytest.raises(ValueError):
            ClientCategory((2, 1))
        with pytest.raises(ValueError):
            ClientCategory((1, 1))


class TestAlgorithm1:
    def test_single_dominating_class(self):
        codebook = RegistryCodebook(group1_config())
        p = np.array([0.85, 0.05, 0.02, 0.02, 0.02, 0.01, 0.01, 0.01, 0.005, 0.005])
        result = codebook.register(p)
        assert result.block == 1
        assert result.category.classes == (0,)
        assert result.registry.sum() == 1
        assert result.registry[result.index] == 1

    def test_two_dominating_classes_example_from_paper(self):
        # paper example: classes '0' and '1' both exceed σ₂ → slot of (0, 1)
        codebook = RegistryCodebook(group1_config())
        p = np.array([0.45, 0.45, 0.02, 0.02, 0.02, 0.01, 0.01, 0.01, 0.005, 0.005])
        result = codebook.register(p)
        assert result.block == 2
        assert result.category.classes == (0, 1)

    def test_balanced_client_falls_through_to_c_block(self):
        # thresholds strictly above 1/C so a perfectly balanced client matches
        # neither the 1- nor the 2-dominating-class block
        config = group1_config(thresholds={1: 0.7, 2: 0.15, 10: 0.0})
        codebook = RegistryCodebook(config)
        p = np.full(10, 0.1)
        result = codebook.register(p)
        assert result.block == 10
        assert result.index == codebook.block_slice(10).start

    def test_threshold_boundary_inclusive(self):
        config = group1_config(thresholds={1: 0.5, 2: 0.1, 10: 0.0})
        codebook = RegistryCodebook(config)
        p = np.array([0.5, 0.5 / 9 * np.ones(9)]).ravel() if False else None
        p = np.concatenate([[0.5], np.full(9, 0.5 / 9)])
        result = codebook.register(p)
        assert result.block == 1  # exactly σ₁ counts as dominating

    def test_invalid_distribution_rejected(self):
        codebook = RegistryCodebook(group1_config())
        with pytest.raises(ValueError):
            codebook.register(np.full(9, 1 / 9))
        with pytest.raises(ValueError):
            codebook.register(np.full(10, 0.2))
        with pytest.raises(ValueError):
            codebook.register(np.array([1.5, -0.5] + [0.0] * 8))

    def test_register_many_and_aggregate(self):
        codebook = RegistryCodebook(group1_config())
        p1 = np.concatenate([[0.9], np.full(9, 0.1 / 9)])
        p2 = np.concatenate([[0.9], np.full(9, 0.1 / 9)])
        p3 = np.full(10, 0.1)
        registrations = codebook.register_many([p1, p2, p3])
        overall = codebook.aggregate(registrations)
        assert overall.sum() == 3
        assert overall[registrations[0].index] == 2
        assert overall[registrations[2].index] == 1

    def test_aggregate_empty_rejected(self):
        codebook = RegistryCodebook(group1_config())
        with pytest.raises(ValueError):
            codebook.aggregate([])

    def test_describe_overall_registry(self):
        codebook = RegistryCodebook(group1_config())
        p1 = np.concatenate([[0.9], np.full(9, 0.1 / 9)])
        registrations = codebook.register_many([p1, p1, np.full(10, 0.1)])
        overall = codebook.aggregate(registrations)
        entries = codebook.describe(overall)
        assert entries[0]["count"] == 2
        assert entries[0]["category"] == (0,)
        assert len(codebook.describe(overall, max_entries=1)) == 1
        with pytest.raises(ValueError):
            codebook.describe(np.zeros(3))


@settings(max_examples=scaled_max_examples(150), deadline=None)
@given(
    counts=hnp.arrays(dtype=np.int64, shape=10,
                      elements=st.integers(min_value=0, max_value=500)),
)
def test_property_every_distribution_registers_exactly_once(counts):
    """Algorithm 1 always produces a one-hot registry for any distribution."""
    codebook = RegistryCodebook(group1_config())
    p = normalize_counts(counts.astype(float))
    result = codebook.register(p)
    assert result.registry.shape == (56,)
    assert result.registry.sum() == 1
    assert result.registry[result.index] == 1
    assert result.block in (1, 2, 10)
    assert len(result.category.classes) == result.block
