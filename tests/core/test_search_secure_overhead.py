"""Tests for parameter search, the secure protocol and overhead accounting."""

import random

import numpy as np
import pytest

from repro.core.config import DubheConfig
from repro.core.overhead import communication_overhead, measure_encryption_overhead
from repro.core.parameter_search import default_sigma_grid, search_thresholds
from repro.core.registry import RegistryCodebook
from repro.core.secure import (
    SecureAggregationServer,
    SecureClient,
    SecureDistributionAggregation,
    SecureRegistrationRound,
)
from repro.crypto.keyagent import KeyAgent
from repro.crypto.paillier import generate_keypair
from repro.data.partition import EMDTargetPartitioner
from repro.data.skew import half_normal_class_proportions


@pytest.fixture(scope="module")
def federation_distributions():
    global_dist = half_normal_class_proportions(10, 10.0)
    partition = EMDTargetPartitioner(80, 64, 1.5, seed=0).partition(global_dist)
    return partition.client_distributions()


def unsettled_config(k=10, h=3):
    return DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                       participants_per_round=k, tentative_selections=h, seed=0)


class TestParameterSearch:
    def test_finds_thresholds_for_every_reference_entry(self, federation_distributions):
        result = search_thresholds(federation_distributions, unsettled_config(),
                                   sigma_grid=(0.1, 0.5, 0.9), seed=0)
        assert set(result.thresholds) == {1, 2, 10}
        assert result.thresholds[10] == 0.0
        assert result.config.has_all_thresholds()
        assert result.score >= 0

    def test_search_score_beats_worst_grid_point(self, federation_distributions):
        result = search_thresholds(federation_distributions, unsettled_config(),
                                   sigma_grid=(0.1, 0.5, 0.9), seed=0)
        assert result.score <= max(result.all_scores.values()) + 1e-9

    def test_monotone_threshold_constraint_respected(self, federation_distributions):
        result = search_thresholds(federation_distributions, unsettled_config(),
                                   sigma_grid=(0.3, 0.7), seed=0)
        for assignment in result.all_scores:
            assert all(assignment[j] >= assignment[j + 1] for j in range(len(assignment) - 1))

    def test_reference_set_with_only_c(self, federation_distributions):
        config = DubheConfig(num_classes=10, reference_set=(10,), participants_per_round=10)
        result = search_thresholds(federation_distributions, config, seed=0)
        assert result.thresholds == {10: 0.0}

    def test_invalid_inputs(self, federation_distributions):
        with pytest.raises(ValueError):
            search_thresholds(federation_distributions[:, :5], unsettled_config())
        with pytest.raises(ValueError):
            search_thresholds(federation_distributions, unsettled_config(), tries=0)
        with pytest.raises(ValueError):
            default_sigma_grid(())
        with pytest.raises(ValueError):
            default_sigma_grid((1.5,))

    def test_settled_config_improves_selection(self, federation_distributions):
        from repro.core.selectors import DubheSelector, RandomSelector

        result = search_thresholds(federation_distributions, unsettled_config(k=16),
                                   sigma_grid=(0.1, 0.3, 0.5, 0.7, 0.9), seed=0)
        dubhe = DubheSelector(federation_distributions, result.config, seed=1)
        rand = RandomSelector(federation_distributions, 16, seed=1)
        dubhe_bias = np.mean([dubhe.bias_of(dubhe.select(r)) for r in range(15)])
        random_bias = np.mean([rand.bias_of(rand.select(r)) for r in range(15)])
        assert dubhe_bias < random_bias


def settled_config(key_size=128, k=5, h=2):
    return DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                       thresholds={1: 0.7, 2: 0.1, 10: 0.0},
                       participants_per_round=k, tentative_selections=h,
                       key_size=key_size)


class TestSecureProtocol:
    def test_registration_round_matches_plaintext_aggregation(self, federation_distributions):
        subset = federation_distributions[:12]
        config = settled_config()
        agent = KeyAgent(key_size=128, rng=random.Random(0))
        overall, registrations, stats = SecureRegistrationRound(config, agent=agent).run(subset)
        codebook = RegistryCodebook(config)
        expected = codebook.aggregate(codebook.register_many(subset))
        np.testing.assert_allclose(overall, expected, atol=1e-6)
        assert len(registrations) == 12
        assert stats.messages > 0
        assert stats.ciphertext_bytes > stats.plaintext_bytes
        assert stats.encrypt_seconds > 0
        assert stats.decrypt_seconds > 0

    def test_server_never_holds_private_key(self):
        keypair = generate_keypair(128, rng=random.Random(1))
        server = SecureAggregationServer(keypair.public_key)
        # structural privacy check: no attribute of the server references the
        # private key and the server exposes no decryption capability
        assert not hasattr(server, "private_key")
        assert not any(
            "private" in attr or "secret" in attr for attr in vars(server)
        )
        assert not hasattr(server, "decrypt")

    def test_server_rejects_foreign_ciphertexts(self):
        kp_a = generate_keypair(128, rng=random.Random(2))
        kp_b = generate_keypair(128, rng=random.Random(3))
        server = SecureAggregationServer(kp_a.public_key)
        client = SecureClient(0, np.full(10, 0.1))
        with pytest.raises(ValueError):
            server.receive(client.encrypted_distribution(kp_b.public_key))

    def test_server_aggregate_requires_messages(self):
        keypair = generate_keypair(128, rng=random.Random(4))
        server = SecureAggregationServer(keypair.public_key)
        with pytest.raises(ValueError):
            server.aggregate()

    def test_client_must_register_before_sending_registry(self):
        keypair = generate_keypair(128, rng=random.Random(5))
        client = SecureClient(0, np.full(10, 0.1))
        with pytest.raises(RuntimeError):
            client.encrypted_registry(keypair.public_key)

    def test_secure_distribution_scoring_matches_plaintext(self, federation_distributions):
        config = settled_config()
        agent = KeyAgent(key_size=128, rng=random.Random(7))
        secure = SecureDistributionAggregation(config, agent=agent)
        selected = [0, 3, 5, 8]
        score = secure.score_selection(federation_distributions, selected)
        plaintext_pop = federation_distributions[selected].mean(axis=0)
        expected = np.abs(plaintext_pop - 0.1).sum()
        assert score == pytest.approx(expected, abs=1e-6)
        assert secure.stats.messages >= len(selected)
        with pytest.raises(ValueError):
            secure.score_selection(federation_distributions, [])


class TestPackedSecureProtocol:
    """The packed pipeline must be a drop-in replacement, bit for bit."""

    def test_packed_round_bit_identical_to_per_component(self, federation_distributions):
        subset = federation_distributions[:10]
        config = settled_config(key_size=256)
        plain, _, plain_stats = SecureRegistrationRound(
            config, agent=KeyAgent(key_size=256, rng=random.Random(21))).run(subset)
        packed, _, packed_stats = SecureRegistrationRound(
            config, agent=KeyAgent(key_size=256, rng=random.Random(21)),
            packed=True, precompute_noise=True).run(subset)
        np.testing.assert_array_equal(plain, packed)
        # packing shrinks the wire and keeps the message count
        assert packed_stats.ciphertext_bytes < plain_stats.ciphertext_bytes
        assert packed_stats.messages == plain_stats.messages
        assert packed_stats.noise_precompute_seconds > 0

    def test_packed_round_parallel_executors(self, federation_distributions):
        subset = federation_distributions[:8]
        config = settled_config(key_size=256)
        baseline, _, _ = SecureRegistrationRound(
            config, agent=KeyAgent(key_size=256, rng=random.Random(22))).run(subset)
        for mode in ("thread", "process"):
            overall, _, stats = SecureRegistrationRound(
                config, agent=KeyAgent(key_size=256, rng=random.Random(22)),
                packed=True, executor_mode=mode, max_workers=2).run(subset)
            np.testing.assert_array_equal(baseline, overall)
            assert stats.encrypt_seconds > 0

    def test_packed_client_transmits_packed_ciphertexts(self, federation_distributions):
        from repro.crypto.packing import PackedEncryptedVector
        from repro.crypto.paillier import NoisePool

        keypair = generate_keypair(256, rng=random.Random(24))
        pool = NoisePool(keypair.public_key, rng=random.Random(25))
        server = SecureAggregationServer(keypair.public_key)
        clients = [SecureClient(k, federation_distributions[k], packed=True,
                                max_weight=4, noise=pool) for k in range(4)]
        for client in clients:
            ciphertext = client.encrypted_distribution(keypair.public_key)
            assert isinstance(ciphertext, PackedEncryptedVector)
            server.receive(ciphertext)
        total = server.aggregate().decrypt(keypair.private_key)
        expected = federation_distributions[:4].sum(axis=0)
        np.testing.assert_allclose(total, expected, atol=1e-9)

    def test_packed_client_requires_max_weight(self, federation_distributions):
        keypair = generate_keypair(256, rng=random.Random(26))
        client = SecureClient(0, federation_distributions[0], packed=True)
        with pytest.raises(ValueError):
            client.encrypted_distribution(keypair.public_key)
        zero = SecureClient(0, federation_distributions[0], packed=True, max_weight=0)
        with pytest.raises(ValueError):
            zero.encrypted_distribution(keypair.public_key)

    def test_packed_scoring_bit_identical(self, federation_distributions):
        config = settled_config(key_size=256)
        selected = [0, 3, 5, 8]
        plain = SecureDistributionAggregation(
            config, agent=KeyAgent(key_size=256, rng=random.Random(23)),
        ).score_selection(federation_distributions, selected)
        packed = SecureDistributionAggregation(
            config, agent=KeyAgent(key_size=256, rng=random.Random(23)),
            packed=True, precompute_noise=True,
        ).score_selection(federation_distributions, selected)
        assert plain == packed


class TestStreamingAggregation:
    def test_received_count_and_aggregate(self):
        keypair = generate_keypair(128, rng=random.Random(31))
        server = SecureAggregationServer(keypair.public_key)
        clients = [SecureClient(k, np.full(4, 0.25)) for k in range(5)]
        for client in clients:
            server.receive(client.encrypted_distribution(keypair.public_key))
        assert server.received_count == 5
        total = server.aggregate().decrypt(keypair.private_key)
        np.testing.assert_allclose(total, np.full(4, 1.25), atol=1e-9)

    def test_memory_is_constant_in_clients(self):
        keypair = generate_keypair(128, rng=random.Random(32))
        server = SecureAggregationServer(keypair.public_key)
        client = SecureClient(0, np.full(4, 0.1))
        for _ in range(7):
            server.receive(client.encrypted_distribution(keypair.public_key))
        # one running aggregate, not a buffer of received vectors
        buffers = [v for v in vars(server).values() if isinstance(v, list)]
        assert not buffers
        assert server.received_count == 7

    def test_receive_does_not_mutate_sender_ciphertext(self):
        keypair = generate_keypair(128, rng=random.Random(33))
        server = SecureAggregationServer(keypair.public_key)
        client = SecureClient(0, np.full(3, 0.5))
        first = client.encrypted_distribution(keypair.public_key)
        original = list(first.ciphertexts)
        server.receive(first)
        server.receive(client.encrypted_distribution(keypair.public_key))
        assert first.ciphertexts == original

    def test_reset_clears_the_stream(self):
        keypair = generate_keypair(128, rng=random.Random(34))
        server = SecureAggregationServer(keypair.public_key)
        client = SecureClient(0, np.full(3, 0.5))
        server.receive(client.encrypted_distribution(keypair.public_key))
        server.reset()
        assert server.received_count == 0
        with pytest.raises(ValueError):
            server.aggregate()


class TestOverheadAccounting:
    def test_encryption_overhead_report(self):
        report = measure_encryption_overhead(vector_length=56, key_size=128, rng_seed=0)
        assert report.plaintext_bytes > 0
        assert report.ciphertext_bytes > report.plaintext_bytes
        assert report.expansion_factor > 1
        assert report.encrypt_seconds > 0
        assert report.decrypt_seconds > 0
        row = report.as_row()
        assert row["vector_length"] == 56
        assert row["key_size"] == 128

    def test_ciphertext_grows_with_key_size(self):
        small = measure_encryption_overhead(16, key_size=128, rng_seed=0)
        large = measure_encryption_overhead(16, key_size=256, rng_seed=0)
        assert large.ciphertext_bytes > small.ciphertext_bytes

    def test_invalid_measure_arguments(self):
        with pytest.raises(ValueError):
            measure_encryption_overhead(0, 128)
        with pytest.raises(ValueError):
            measure_encryption_overhead(10, 128, trials=0)
        with pytest.raises(ValueError):
            measure_encryption_overhead(10, 256, packed_clients=0)

    def test_packed_overhead_report(self):
        report = measure_encryption_overhead(vector_length=56, key_size=256,
                                             rng_seed=0, packed_clients=100)
        assert report.packed_ciphertexts < 56
        assert report.packed_ciphertext_bytes < report.ciphertext_bytes
        assert report.packed_expansion_factor < report.expansion_factor
        assert report.packing_gain > 1
        row = report.as_row()
        assert row["packed_kb"] < row["ciphertext_kb"]
        assert {"packed_expansion", "packed_encrypt_s", "packed_decrypt_s"} <= set(row)

    def test_report_without_packed_measurement_has_no_packed_columns(self):
        report = measure_encryption_overhead(vector_length=8, key_size=128, rng_seed=0)
        assert report.packed_expansion_factor is None
        assert report.packing_gain is None
        assert "packed_kb" not in report.as_row()

    def test_communication_counts_match_paper_formulas(self):
        report = communication_overhead(n_clients=1000, participants_per_round=20,
                                        tentative_selections=10,
                                        reregistration=True, multitime_determination=True)
        assert report.baseline_messages == 20
        assert report.registration_messages == 1000
        assert report.multitime_messages == 200
        assert report.dubhe_total == 1220
        assert report.overhead_ratio == pytest.approx(1200 / 20)

    def test_no_optional_features_no_overhead(self):
        report = communication_overhead(1000, 20, reregistration=False)
        assert report.registration_messages == 0
        assert report.multitime_messages == 0
        assert report.overhead_ratio == 0

    def test_invalid_communication_arguments(self):
        with pytest.raises(ValueError):
            communication_overhead(0, 1)
        with pytest.raises(ValueError):
            communication_overhead(10, 20)
        with pytest.raises(ValueError):
            communication_overhead(10, 5, tentative_selections=0)
