"""Round-by-round training history of a federated run.

Figures 2, 6 and 8 of the paper plot test accuracy against rounds; Figure 7
reports the *average accuracy over the last 50 rounds*; Figures 2/8 also show
the participated class proportion.  :class:`TrainingHistory` records exactly
those series so every benchmark reads its numbers from one place.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

__all__ = ["RoundRecord", "TrainingHistory"]


def _native_float(value) -> Optional[float]:
    """``None``-preserving conversion of (numpy) scalars to native floats."""
    return None if value is None else float(value)


@dataclass(frozen=True)
class RoundRecord:
    """Everything measured about one federated round.

    ``selected_clients`` is the *planned* cohort (the selector's output);
    under a fault-injection scenario (:mod:`repro.scenarios`) the round may
    aggregate fewer: ``actual_clients`` are the survivors whose updates were
    aggregated (``None`` in scenario-free runs, meaning planned == actual),
    ``failures`` maps each failed client to its cause (one of
    :data:`repro.scenarios.FAILURE_CAUSES`), ``aggregation_skipped`` flags a
    round that fell below the participation threshold (global model carried
    forward), and ``actual_population_bias`` is ``||p_o − p_u||₁`` over the
    survivors (``NaN`` when nobody survived).  ``fallback_reason`` surfaces
    :attr:`repro.federated.LocalUpdateExecutor.last_fallback_reason`, so a
    silent back-end degradation (parallel → vectorized → sequential) is
    visible in the run history rather than only on the executor object.

    Example
    -------
    >>> import numpy as np
    >>> record = RoundRecord(round_index=0, selected_clients=(3, 1),
    ...                      population_distribution=np.array([0.5, 0.5]),
    ...                      population_bias=0.0, test_accuracy=0.9)
    >>> record.selected_clients, record.participants, record.failures
    ((3, 1), (3, 1), {})
    """

    round_index: int
    selected_clients: tuple[int, ...]
    population_distribution: np.ndarray
    population_bias: float            # ||p_o − p_u||₁ of this round's selection
    test_accuracy: Optional[float]    # None when evaluation was skipped this round
    train_loss: Optional[float] = None
    #: survivors actually aggregated; None = scenario-free (== selected)
    actual_clients: Optional[tuple[int, ...]] = None
    #: failed client id -> cause ("offline", "dropout", "straggler", ...)
    failures: Mapping[int, str] = field(default_factory=dict)
    #: why the executor degraded its back-end this round (or None)
    fallback_reason: Optional[str] = None
    #: True when survivors fell below the scenario's participation threshold
    aggregation_skipped: bool = False
    #: ||p_o − p_u||₁ over the survivors (None = scenario-free, NaN = nobody)
    actual_population_bias: Optional[float] = None
    #: simulated round duration contributed by surviving stragglers (seconds)
    round_delay: float = 0.0
    #: True when a label-drift event re-registered clients before this round
    drift_applied: bool = False
    #: undecodable frames this round: client id -> count (-1 = unidentified
    #: peer); populated only by the socket transport
    decode_failures: Mapping[int, int] = field(default_factory=dict)
    #: connections lost this round: client id -> cause ("connection_lost",
    #: "corrupt_frame", "heartbeat"); populated only by the socket transport
    disconnects: Mapping[int, str] = field(default_factory=dict)

    @property
    def participants(self) -> tuple[int, ...]:
        """The clients whose updates were aggregated this round."""
        return self.selected_clients if self.actual_clients is None else self.actual_clients

    # -- serialization -------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-ready dictionary of this record (numpy scalars → native).

        Every numpy scalar becomes a native Python number, the population
        distribution becomes a plain list and failure keys become strings
        (JSON object keys are always strings), so ``json.dumps`` accepts the
        result without a custom encoder and
        :meth:`from_dict` round-trips it exactly — the contract the run
        ledger's per-round rows (:mod:`repro.ledger`) rely on.

        Example
        -------
        >>> import numpy as np
        >>> record = RoundRecord(0, (3, 1), np.array([0.5, 0.5]), 0.0, 0.9)
        >>> record.to_dict()["selected_clients"]
        [3, 1]
        """
        return {
            "round_index": int(self.round_index),
            "selected_clients": [int(c) for c in self.selected_clients],
            "population_distribution": [
                float(p) for p in np.asarray(self.population_distribution).ravel()
            ],
            "population_bias": float(self.population_bias),
            "test_accuracy": _native_float(self.test_accuracy),
            "train_loss": _native_float(self.train_loss),
            "actual_clients": (None if self.actual_clients is None
                               else [int(c) for c in self.actual_clients]),
            "failures": {str(int(k)): str(v) for k, v in self.failures.items()},
            "fallback_reason": self.fallback_reason,
            "aggregation_skipped": bool(self.aggregation_skipped),
            "actual_population_bias": _native_float(self.actual_population_bias),
            "round_delay": float(self.round_delay),
            "drift_applied": bool(self.drift_applied),
            "decode_failures": {str(int(k)): int(v)
                                for k, v in self.decode_failures.items()},
            "disconnects": {str(int(k)): str(v)
                            for k, v in self.disconnects.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "RoundRecord":
        """Rebuild a record from :meth:`to_dict` output (inverse round-trip).

        Example
        -------
        >>> import numpy as np
        >>> record = RoundRecord(0, (3, 1), np.array([0.5, 0.5]), 0.0, 0.9)
        >>> RoundRecord.from_dict(record.to_dict()).selected_clients
        (3, 1)
        """
        actual = payload.get("actual_clients")
        return cls(
            round_index=int(payload["round_index"]),
            selected_clients=tuple(int(c) for c in payload["selected_clients"]),
            population_distribution=np.asarray(payload["population_distribution"],
                                               dtype=float),
            population_bias=float(payload["population_bias"]),
            test_accuracy=_native_float(payload.get("test_accuracy")),
            train_loss=_native_float(payload.get("train_loss")),
            actual_clients=None if actual is None else tuple(int(c) for c in actual),
            failures={int(k): str(v)
                      for k, v in dict(payload.get("failures") or {}).items()},
            fallback_reason=payload.get("fallback_reason"),
            aggregation_skipped=bool(payload.get("aggregation_skipped", False)),
            actual_population_bias=_native_float(
                payload.get("actual_population_bias")),
            round_delay=float(payload.get("round_delay", 0.0)),
            drift_applied=bool(payload.get("drift_applied", False)),
            decode_failures={int(k): int(v) for k, v in
                             dict(payload.get("decode_failures") or {}).items()},
            disconnects={int(k): str(v) for k, v in
                         dict(payload.get("disconnects") or {}).items()},
        )


@dataclass
class TrainingHistory:
    """Accumulated per-round records plus convenience reductions.

    Example
    -------
    >>> import numpy as np
    >>> history = TrainingHistory()
    >>> history.append(RoundRecord(0, (0, 1), np.array([0.5, 0.5]), 0.0, 0.8))
    >>> len(history), history.accuracies().tolist()
    (1, [0.8])
    """

    records: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        """Add one completed round's record to the history."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # -- series ------------------------------------------------------------------

    def accuracies(self) -> np.ndarray:
        """Test accuracy per evaluated round (NaN where evaluation was skipped)."""
        return np.array(
            [np.nan if r.test_accuracy is None else r.test_accuracy for r in self.records]
        )

    def population_biases(self) -> np.ndarray:
        """``||p_o − p_u||₁`` per round."""
        return np.array([r.population_bias for r in self.records])

    def population_distributions(self) -> np.ndarray:
        """Stacked per-round population distributions, shape ``(rounds, C)``."""
        if not self.records:
            return np.empty((0, 0))
        return np.vstack([r.population_distribution for r in self.records])

    def participation_counts(self, n_clients: int) -> np.ndarray:
        """How many times each client was selected over the run."""
        counts = np.zeros(n_clients, dtype=int)
        for r in self.records:
            for k in r.selected_clients:
                counts[k] += 1
        return counts

    # -- fault-injection series (scenario runs) ------------------------------------

    def actual_population_biases(self) -> np.ndarray:
        """``||p_o − p_u||₁`` over each round's *aggregated* survivors.

        Scenario-free rounds report the planned bias (survivors == planned);
        rounds that aggregated nobody report ``NaN``.
        """
        return np.array([
            r.population_bias if r.actual_population_bias is None
            else r.actual_population_bias
            for r in self.records
        ])

    def failure_totals(self) -> "dict[str, int]":
        """Injected client-round faults over the whole run, keyed by cause."""
        totals: dict[str, int] = {}
        for r in self.records:
            for cause in r.failures.values():
                totals[cause] = totals.get(cause, 0) + 1
        return totals

    def decode_failure_totals(self) -> "dict[int, int]":
        """Undecodable frames over the whole run, keyed by client id.

        ``-1`` collects frames from peers that never finished registering.
        Non-zero totals mean the link (or a chaos proxy) corrupted traffic
        — previously these peers were dropped silently.

        Example
        -------
        >>> TrainingHistory().decode_failure_totals()
        {}
        """
        totals: dict[int, int] = {}
        for r in self.records:
            for client_id, count in r.decode_failures.items():
                totals[client_id] = totals.get(client_id, 0) + count
        return totals

    def disconnect_totals(self) -> "dict[str, int]":
        """Connection losses over the whole run, keyed by cause.

        Causes are ``"connection_lost"`` (EOF/reset), ``"corrupt_frame"``
        (undecodable traffic cut the link) and ``"heartbeat"`` (declared
        dead after silent heartbeat intervals).

        Example
        -------
        >>> TrainingHistory().disconnect_totals()
        {}
        """
        totals: dict[str, int] = {}
        for r in self.records:
            for cause in r.disconnects.values():
                totals[cause] = totals.get(cause, 0) + 1
        return totals

    def skipped_round_count(self) -> int:
        """Rounds whose aggregation was skipped (below the participation floor)."""
        return sum(1 for r in self.records if r.aggregation_skipped)

    def fallback_reasons(self) -> "list[tuple[int, str]]":
        """Rounds on which the executor degraded its back-end, with the reason."""
        return [(r.round_index, r.fallback_reason) for r in self.records
                if r.fallback_reason is not None]

    # -- reductions ----------------------------------------------------------------

    def final_accuracy(self) -> float:
        """Accuracy of the last evaluated round."""
        acc = self.accuracies()
        valid = acc[~np.isnan(acc)]
        if valid.size == 0:
            raise ValueError("no evaluated rounds in history")
        return float(valid[-1])

    def tail_average_accuracy(self, window: int = 50) -> float:
        """Average accuracy over the last *window* evaluated rounds (Figure 7)."""
        if window < 1:
            raise ValueError("window must be positive")
        acc = self.accuracies()
        valid = acc[~np.isnan(acc)]
        if valid.size == 0:
            raise ValueError("no evaluated rounds in history")
        return float(valid[-window:].mean())

    def mean_population_bias(self) -> float:
        """Average ``||p_o − p_u||₁`` over all rounds."""
        if not self.records:
            raise ValueError("empty history")
        return float(self.population_biases().mean())

    def average_population_distribution(self) -> np.ndarray:
        """Expectation of the participated class proportion over rounds (Fig. 2/8/10)."""
        dists = self.population_distributions()
        if dists.size == 0:
            raise ValueError("empty history")
        return dists.mean(axis=0)

    def summary(self) -> dict:
        """A compact dictionary used by benchmarks and examples."""
        return {
            "rounds": len(self.records),
            "final_accuracy": self.final_accuracy(),
            "tail_accuracy": self.tail_average_accuracy(min(50, len(self.records))),
            "mean_population_bias": self.mean_population_bias(),
        }

    # -- serialization -------------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        """The whole history as a JSON document (one object per round).

        Built on :meth:`RoundRecord.to_dict`, so numpy scalars are already
        native and :meth:`from_json` reproduces every record exactly.

        Example
        -------
        >>> import numpy as np
        >>> history = TrainingHistory()
        >>> history.append(RoundRecord(0, (0,), np.array([1.0]), 0.0, 0.5))
        >>> len(TrainingHistory.from_json(history.to_json()))
        1
        """
        return json.dumps({"records": [r.to_dict() for r in self.records]},
                          indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "TrainingHistory":
        """Rebuild a history from :meth:`to_json` output.

        Example
        -------
        >>> TrainingHistory.from_json('{"records": []}').records
        []
        """
        payload = json.loads(text)
        history = cls()
        for record in payload.get("records", []):
            history.append(RoundRecord.from_dict(record))
        return history
