"""Global data-skew generation (the class imbalance ratio ρ).

The paper (§6.1.1) synthesises globally imbalanced datasets by sampling class
sizes from a **half-normal distribution**, then characterises the skew by the
class imbalance ratio ``ρ`` — the sample size of the most frequent class
divided by that of the least frequent class.

:func:`half_normal_class_proportions` reproduces that construction: class
``c`` is assigned a share proportional to the half-normal density evaluated on
an equally spaced grid, with the grid extent solved analytically so that the
ratio of the largest to the smallest share is exactly ``ρ``.
:func:`skewed_class_counts` turns the shares into integer per-class sample
counts for a dataset of a given total size.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .distributions import imbalance_ratio, normalize_counts

__all__ = [
    "half_normal_class_proportions",
    "skewed_class_counts",
    "apply_global_skew",
]


def half_normal_class_proportions(num_classes: int, rho: float,
                                  rng: Optional[np.random.Generator] = None,
                                  shuffle: bool = False) -> np.ndarray:
    """Class proportions with a half-normal profile and exact imbalance ratio ρ.

    The half-normal density is ``f(x) ∝ exp(-x² / 2)`` for ``x ≥ 0``.  We
    evaluate it at ``C`` equally spaced points ``x_c = c · s`` and solve for
    the spacing ``s`` such that ``f(x_0) / f(x_{C-1}) = ρ``:

    ``exp(x_{C-1}² / 2) = ρ  ⇒  x_{C-1} = sqrt(2 ln ρ)``.

    Parameters
    ----------
    num_classes:
        Number of classes ``C``.
    rho:
        Target imbalance ratio ``ρ ≥ 1``.  ``ρ = 1`` yields the uniform
        (balanced) global distribution.
    rng, shuffle:
        When *shuffle* is true the class-to-share assignment is permuted with
        *rng* so that the most frequent class is not always class 0.
    """
    if num_classes < 1:
        raise ValueError("num_classes must be positive")
    if rho < 1:
        raise ValueError(f"imbalance ratio must be >= 1, got {rho}")
    if num_classes == 1 or rho == 1.0:
        proportions = np.full(num_classes, 1.0 / num_classes)
    else:
        x_max = np.sqrt(2.0 * np.log(rho))
        x = np.linspace(0.0, x_max, num_classes)
        densities = np.exp(-0.5 * x**2)
        proportions = normalize_counts(densities)
    if shuffle:
        rng = rng if rng is not None else np.random.default_rng()
        proportions = rng.permutation(proportions)
    return proportions


def skewed_class_counts(total_samples: int, num_classes: int, rho: float,
                        rng: Optional[np.random.Generator] = None,
                        shuffle: bool = False) -> np.ndarray:
    """Integer per-class sample counts for a globally skewed dataset.

    Counts are obtained by largest-remainder rounding of the half-normal
    shares so that they sum exactly to *total_samples* and every class keeps
    at least one sample (so ρ stays finite).
    """
    if total_samples < num_classes:
        raise ValueError("need at least one sample per class")
    proportions = half_normal_class_proportions(num_classes, rho, rng=rng, shuffle=shuffle)
    raw = proportions * total_samples
    counts = np.floor(raw).astype(int)
    counts = np.maximum(counts, 1)
    # largest-remainder correction towards the exact total
    deficit = total_samples - counts.sum()
    if deficit > 0:
        order = np.argsort(-(raw - np.floor(raw)))
        for i in range(deficit):
            counts[order[i % num_classes]] += 1
    elif deficit < 0:
        order = np.argsort(raw - np.floor(raw))
        i = 0
        while deficit < 0 and i < 10 * num_classes:
            c = order[i % num_classes]
            if counts[c] > 1:
                counts[c] -= 1
                deficit += 1
            i += 1
    return counts


def apply_global_skew(labels: np.ndarray, num_classes: int, rho: float,
                      rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Subsample an existing label array so its global skew matches ρ.

    Returns the indices (into *labels*) of the retained samples.  The most
    frequent class keeps as many samples as available; other classes are
    subsampled according to the half-normal profile.
    """
    rng = rng if rng is not None else np.random.default_rng()
    labels = np.asarray(labels)
    proportions = half_normal_class_proportions(num_classes, rho)
    per_class_available = np.bincount(labels, minlength=num_classes)
    # scale so that no class requests more samples than it has
    scale = np.min(per_class_available / np.maximum(proportions, 1e-12))
    target = np.maximum((proportions * scale).astype(int), 1)
    keep: list[np.ndarray] = []
    for c in range(num_classes):
        idx = np.flatnonzero(labels == c)
        take = min(target[c], idx.size)
        keep.append(rng.choice(idx, size=take, replace=False))
    result = np.concatenate(keep)
    rng.shuffle(result)
    return result


def _self_check() -> None:  # pragma: no cover - convenience for interactive use
    counts = skewed_class_counts(10_000, 10, 10.0)
    assert abs(imbalance_ratio(counts) - 10.0) < 1.0
