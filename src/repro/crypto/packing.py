"""Ciphertext packing: many plaintext slots per Paillier ciphertext.

Per-component encryption (:class:`~repro.crypto.vector.EncryptedVector`)
spends one full ciphertext — and one ``pow(r, n, n²)`` — on every vector
component, even though a Dubhe registry slot needs ~50 bits of plaintext and
the modulus offers 2048.  BatchCrypt-style packing (deployed in FATE, cited
in the paper's §6.4 as the cost baseline) closes that gap: multiple
fixed-point values are laid out in disjoint bit-ranges ("slots") of a single
plaintext, so a length-``l`` vector ships as ``⌈l / slots⌉`` ciphertexts
instead of ``l``.

Slot layout
-----------
Values are fixed-point encoded exactly as in the per-component path
(``e = round(v · base^precision)``) and stored with a per-addend offset so
slots never go negative (a negative slot would borrow into its neighbour):

* ``offset = ceil(max_abs_value · base^precision)`` bounds ``|e|``;
* a freshly encrypted slot holds ``e + offset ∈ [0, 2·offset]``;
* a sum of vectors with combined *weight* ``W`` (each fresh vector has
  weight 1; ``scale(k)`` multiplies the weight by ``k``) holds
  ``Σe + W·offset ∈ [0, 2·W·offset]``;
* ``slot_bits = bitlen(2·offset·max_weight) + 1`` guarantees a slot can
  absorb ``max_weight`` homomorphic additions without carrying into the next
  slot — the per-slot headroom for up to ``n_clients`` additions;
* decoding subtracts the accumulated offset: ``e = slot − W·offset``.

Because encode, integer addition and decode are the very same arithmetic the
per-component path performs, packed and per-component protocols decrypt to
**bit-identical** floats (asserted in the test-suite).

The packed plaintext never exceeds ``2^(slot_bits · slots_per_ciphertext)
− 1 ≤ public_key.max_int``, so the usual Paillier negative-wraparound range
is untouched.
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

import numpy as np

from .encoding import DEFAULT_BASE, DEFAULT_PRECISION
from .paillier import NoisePool, PaillierPrivateKey, PaillierPublicKey

__all__ = [
    "PackingScheme",
    "PackedEncryptedVector",
    "StreamingTreeAggregator",
    "DEFAULT_MAX_WEIGHT",
    "tree_sum",
]

#: Default homomorphic-addition headroom: how many fresh vectors (clients)
#: can be summed into one packed ciphertext before a slot could overflow.
DEFAULT_MAX_WEIGHT = 128

_HEADER_BYTES = 4 * 6  # vector_length, max_weight, weight, slot_bits, count, width


class PackingScheme:
    """Slot geometry for packing a fixed-point vector under a public key.

    Two packed vectors can only be combined when their schemes are
    *compatible*: same modulus, vector length, slot width, fixed-point scale
    and headroom.

    Example
    -------
    >>> from repro.crypto import generate_keypair
    >>> public, _ = generate_keypair(key_size=256)
    >>> scheme = PackingScheme(public, vector_length=56, max_weight=100)
    >>> scheme.num_ciphertexts == -(-56 // scheme.slots_per_ciphertext)
    True
    """

    @classmethod
    def for_counts(cls, public_key: PaillierPublicKey, vector_length: int,
                   max_weight: int = DEFAULT_MAX_WEIGHT) -> "PackingScheme":
        """A scheme specialised for integer count vectors (registries).

        Dubhe registries are 0/1 vectors summed across clients, so the
        fixed-point machinery is overkill: ``base=2, precision=0`` makes the
        scale 1 (every integer encodes as itself, decode is exact) and
        shrinks a slot from ~50 bits under the float default to
        ``bitlen(4·max_weight) + 1`` bits — about 2.3× fewer ciphertexts per
        registry at million-client headroom, and proportionally fewer
        modular exponentiations.  Decrypted sums are bit-identical to the
        float-scheme path (both recover the exact integer).

        Example
        -------
        >>> from repro.crypto import generate_keypair
        >>> public, _ = generate_keypair(key_size=256)
        >>> scheme = PackingScheme.for_counts(public, 56, max_weight=10**6)
        >>> scheme.scale
        1
        """
        return cls(public_key, vector_length, max_weight=max_weight,
                   base=2, precision=0, max_abs_value=1.0)

    def __init__(self, public_key: PaillierPublicKey, vector_length: int,
                 max_weight: int = DEFAULT_MAX_WEIGHT,
                 base: int = DEFAULT_BASE, precision: int = DEFAULT_PRECISION,
                 max_abs_value: float = 1.0):
        if vector_length < 1:
            raise ValueError("vector_length must be positive")
        if max_weight < 1:
            raise ValueError("max_weight must be positive")
        if max_abs_value <= 0:
            raise ValueError("max_abs_value must be positive")
        self.public_key = public_key
        self.vector_length = vector_length
        self.max_weight = max_weight
        self.base = base
        self.precision = precision
        self.scale = base ** precision
        #: Per-addend slot offset; also the bound on a fresh |encoding|.
        #: +1 absorbs float rounding in ``max_abs_value · scale``.
        self.offset = int(np.ceil(max_abs_value * self.scale)) + 1
        # one guard bit on top of the worst-case slot value 2·offset·W
        self.slot_bits = (2 * self.offset * max_weight).bit_length() + 1
        capacity_bits = public_key.max_int.bit_length() - 1
        self.slots_per_ciphertext = capacity_bits // self.slot_bits
        if self.slots_per_ciphertext < 1:
            raise ValueError(
                f"a {public_key.key_size}-bit modulus cannot hold even one "
                f"{self.slot_bits}-bit slot (headroom for {max_weight} additions)"
            )
        self.num_ciphertexts = -(-vector_length // self.slots_per_ciphertext)
        self._slot_mask = (1 << self.slot_bits) - 1

    # -- codec ---------------------------------------------------------------

    def encode_chunk(self, encodings: Sequence[int]) -> int:
        """Pack ≤ ``slots_per_ciphertext`` signed encodings into one plaintext."""
        if len(encodings) > self.slots_per_ciphertext:
            raise OverflowError(
                f"{len(encodings)} encodings exceed the "
                f"{self.slots_per_ciphertext} slots of one ciphertext"
            )
        packed = 0
        shift = 0
        offset = self.offset
        for e in encodings:
            if abs(e) > offset:
                raise OverflowError(
                    f"encoding {e} exceeds the slot magnitude bound {offset}"
                )
            packed |= (e + offset) << shift
            shift += self.slot_bits
        return packed

    def decode_chunk(self, packed: int, count: int, weight: int) -> list[int]:
        """Unpack *count* slots of a decrypted plaintext back to encodings."""
        bias = weight * self.offset
        mask = self._slot_mask
        bits = self.slot_bits
        return [((packed >> (i * bits)) & mask) - bias for i in range(count)]

    def chunk_lengths(self) -> list[int]:
        """How many slots each of the ``num_ciphertexts`` chunks carries."""
        full, rem = divmod(self.vector_length, self.slots_per_ciphertext)
        lengths = [self.slots_per_ciphertext] * full
        if rem:
            lengths.append(rem)
        return lengths

    def compatible_with(self, other: "PackingScheme") -> bool:
        """Whether vectors packed under the two schemes can be combined."""
        return (
            self.public_key == other.public_key
            and self.vector_length == other.vector_length
            and self.max_weight == other.max_weight
            and self.slot_bits == other.slot_bits
            and self.base == other.base
            and self.precision == other.precision
            and self.offset == other.offset
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackingScheme(len={self.vector_length}, slots={self.slots_per_ciphertext}"
            f"/ct, slot_bits={self.slot_bits}, max_weight={self.max_weight})"
        )


class PackedEncryptedVector:
    """A vector packed into ``⌈l/slots⌉`` Paillier ciphertexts.

    API-compatible with :class:`~repro.crypto.vector.EncryptedVector`:
    supports ``+``, :meth:`scale`, :meth:`sum`, :meth:`decrypt`,
    :meth:`to_bytes` / :meth:`from_bytes`, :meth:`nbytes` and ``len()``
    (the *logical* vector length), so the secure protocol layer can swap it
    in without touching the server.

    Example
    -------
    >>> import numpy as np
    >>> from repro.crypto import generate_keypair
    >>> public, private = generate_keypair(key_size=256)
    >>> a = PackedEncryptedVector.encrypt(public, [0.25, -0.5, 0.125])
    >>> b = PackedEncryptedVector.encrypt(public, [0.25, 0.5, 0.0],
    ...                                   scheme=a.scheme)
    >>> (a + b).decrypt(private).tolist()
    [0.5, 0.0, 0.125]
    """

    def __init__(self, scheme: PackingScheme, ciphertexts: list[int], weight: int = 1):
        if len(ciphertexts) != scheme.num_ciphertexts:
            raise ValueError(
                f"expected {scheme.num_ciphertexts} ciphertexts, got {len(ciphertexts)}"
            )
        if not (1 <= weight <= scheme.max_weight):
            raise ValueError(f"weight {weight} outside [1, {scheme.max_weight}]")
        self.scheme = scheme
        self.public_key = scheme.public_key
        self.ciphertexts = list(ciphertexts)
        self.weight = weight
        self.base = scheme.base
        self.precision = scheme.precision

    # -- construction --------------------------------------------------------

    @classmethod
    def encrypt(cls, public_key: PaillierPublicKey,
                values: Iterable[float] | np.ndarray,
                scheme: Optional[PackingScheme] = None,
                max_weight: int = DEFAULT_MAX_WEIGHT,
                base: int = DEFAULT_BASE, precision: int = DEFAULT_PRECISION,
                max_abs_value: float = 1.0,
                noise: Optional[NoisePool | Sequence[int]] = None,
                rng: Optional[random.Random] = None) -> "PackedEncryptedVector":
        """Encrypt *values* packed, with headroom for *max_weight* additions.

        When *noise* is given (a :class:`NoisePool` or a pre-drawn sequence of
        ``r^n mod n²`` terms), each chunk consumes one precomputed term
        instead of running a modular exponentiation.
        """
        flat = np.asarray(list(values), dtype=float).ravel()
        if scheme is None:
            scheme = PackingScheme(public_key, len(flat), max_weight=max_weight,
                                   base=base, precision=precision,
                                   max_abs_value=max_abs_value)
        elif scheme.vector_length != len(flat):
            raise ValueError("scheme vector_length does not match the values")
        scale = scheme.scale
        encodings = [round(float(v) * scale) for v in flat]
        per_chunk = scheme.slots_per_ciphertext
        if noise is None:
            rn_values = None
        elif isinstance(noise, NoisePool):
            rn_values = noise.take_many(scheme.num_ciphertexts)
        else:
            rn_values = list(noise)
            if len(rn_values) < scheme.num_ciphertexts:
                raise ValueError(
                    f"need {scheme.num_ciphertexts} noise terms, got {len(rn_values)}"
                )
        ciphertexts = []
        for index, start in enumerate(range(0, len(encodings), per_chunk)):
            packed = scheme.encode_chunk(encodings[start:start + per_chunk])
            rn = rn_values[index] if rn_values is not None else None
            ciphertexts.append(public_key.raw_encrypt(packed, rng=rng, rn_value=rn))
        return cls(scheme, ciphertexts, weight=1)

    def decrypt(self, private_key: PaillierPrivateKey) -> np.ndarray:
        """Decrypt back to a float ndarray (same arithmetic as per-component)."""
        if private_key.public_key != self.public_key:
            raise ValueError("private key does not match this vector's public key")
        scheme = self.scheme
        scale = scheme.scale
        out = np.empty(scheme.vector_length, dtype=float)
        pos = 0
        for ciphertext, count in zip(self.ciphertexts, scheme.chunk_lengths()):
            packed = private_key.raw_decrypt(ciphertext)
            for e in scheme.decode_chunk(packed, count, self.weight):
                out[pos] = e / scale
                pos += 1
        return out

    # -- homomorphic algebra --------------------------------------------------

    def _check_compatible(self, other: "PackedEncryptedVector") -> None:
        if not isinstance(other, PackedEncryptedVector):
            raise TypeError("can only combine with another PackedEncryptedVector")
        if not self.scheme.compatible_with(other.scheme):
            raise ValueError("cannot combine packed vectors with different schemes")

    def _check_weight(self, weight: int) -> int:
        if weight > self.scheme.max_weight:
            raise OverflowError(
                f"combined weight {weight} exceeds the packing headroom "
                f"max_weight={self.scheme.max_weight}; re-encrypt with a "
                f"larger max_weight"
            )
        return weight

    def __add__(self, other: "PackedEncryptedVector") -> "PackedEncryptedVector":
        if not isinstance(other, PackedEncryptedVector):
            return NotImplemented
        return self.copy().add_(other)

    def copy(self) -> "PackedEncryptedVector":
        """A ciphertext-level copy (safe to accumulate into in place)."""
        return PackedEncryptedVector(self.scheme, self.ciphertexts, weight=self.weight)

    def add_(self, other: "PackedEncryptedVector") -> "PackedEncryptedVector":
        """In-place homomorphic addition (streaming aggregation)."""
        if not isinstance(other, PackedEncryptedVector):
            raise TypeError("can only add another PackedEncryptedVector")
        self._check_compatible(other)
        self.weight = self._check_weight(self.weight + other.weight)
        nsquare = self.public_key.nsquare
        own = self.ciphertexts
        theirs = other.ciphertexts
        for i in range(len(own)):
            own[i] = own[i] * theirs[i] % nsquare
        return self

    def scale(self, scalar: int) -> "PackedEncryptedVector":
        """Multiply every slot by a plaintext positive integer scalar.

        Negative scalars are rejected: a negative slot value would borrow
        across slot boundaries (use the per-component path for signed
        scaling).
        """
        if not isinstance(scalar, int) or isinstance(scalar, bool):
            raise TypeError("scale expects a plaintext int scalar")
        if scalar < 1:
            raise ValueError("packed vectors only support positive scalars")
        weight = self._check_weight(self.weight * scalar)
        nsquare = self.public_key.nsquare
        scaled = [pow(c, scalar, nsquare) for c in self.ciphertexts]
        return PackedEncryptedVector(self.scheme, scaled, weight=weight)

    @staticmethod
    def sum(vectors: Sequence["PackedEncryptedVector"]) -> "PackedEncryptedVector":
        """Homomorphically sum a non-empty sequence, one accumulator pass."""
        if not vectors:
            raise ValueError("cannot sum an empty sequence of packed vectors")
        total = vectors[0].copy()
        for v in vectors[1:]:
            total.add_(v)
        return total

    # -- sizes / serialization -------------------------------------------------

    def __len__(self) -> int:
        return self.scheme.vector_length

    def nbytes(self) -> int:
        """Total ciphertext wire size in bytes (components only)."""
        return len(self.ciphertexts) * self.public_key.ciphertext_bytes()

    def to_bytes(self) -> bytes:
        """Serialize to the packed wire format (see module docstring)."""
        width = self.public_key.ciphertext_bytes()
        header = b"".join(
            value.to_bytes(4, "big")
            for value in (self.scheme.vector_length, self.scheme.max_weight,
                          self.weight, self.scheme.slot_bits,
                          len(self.ciphertexts), width)
        )
        return header + b"".join(c.to_bytes(width, "big") for c in self.ciphertexts)

    @classmethod
    def from_bytes(cls, public_key: PaillierPublicKey, payload: bytes,
                   base: int = DEFAULT_BASE, precision: int = DEFAULT_PRECISION,
                   max_abs_value: float = 1.0) -> "PackedEncryptedVector":
        """Inverse of :meth:`to_bytes` (the receiver knows the key and scale)."""
        if len(payload) < _HEADER_BYTES:
            raise ValueError("packed payload shorter than its header")
        fields = [int.from_bytes(payload[4 * i:4 * i + 4], "big") for i in range(6)]
        vector_length, max_weight, weight, slot_bits, count, width = fields
        if width != public_key.ciphertext_bytes():
            raise ValueError(
                f"wire ciphertext width {width} does not match the "
                f"{public_key.key_size}-bit key ({public_key.ciphertext_bytes()})"
            )
        if len(payload) != _HEADER_BYTES + count * width:
            raise ValueError(
                f"packed payload is {len(payload)} bytes, expected "
                f"{_HEADER_BYTES + count * width} for {count} ciphertexts"
            )
        scheme = PackingScheme(public_key, vector_length, max_weight=max_weight,
                               base=base, precision=precision,
                               max_abs_value=max_abs_value)
        if scheme.slot_bits != slot_bits:
            raise ValueError(
                f"wire slot_bits={slot_bits} does not match the locally derived "
                f"{scheme.slot_bits}; base/precision/max_abs_value mismatch"
            )
        ciphertexts = []
        offset = _HEADER_BYTES
        for _ in range(count):
            ciphertexts.append(int.from_bytes(payload[offset:offset + width], "big"))
            offset += width
        return cls(scheme, ciphertexts, weight=weight)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PackedEncryptedVector(len={len(self)}, ciphertexts="
            f"{len(self.ciphertexts)}, weight={self.weight}, "
            f"key_bits={self.public_key.key_size})"
        )


def tree_sum(vectors: Sequence["PackedEncryptedVector"], arity: int = 2):
    """Homomorphically sum *vectors* by a fixed-arity merge tree.

    Paillier addition (ciphertext multiplication mod ``n²``) is associative
    and commutative, so the tree fold returns **bit-identical** ciphertexts
    to the flat left-to-right :meth:`PackedEncryptedVector.sum` — only the
    *dependency depth* changes: the longest chain of sequential additions is
    ``O(arity · log_arity N)`` instead of ``N − 1``, which is what bounds
    server latency (and enables pipelining) at million-client scale.

    Duck-typed over the ``copy``/``add_`` surface, so it folds
    :class:`~repro.crypto.vector.EncryptedVector` sequences too.

    Example
    -------
    >>> from repro.crypto import generate_keypair
    >>> public, private = generate_keypair(key_size=256)
    >>> vs = [PackedEncryptedVector.encrypt(public, [i / 4]) for i in range(5)]
    >>> tree_sum(vs, arity=2).decrypt(private).tolist()
    [2.5]
    """
    if arity < 2:
        raise ValueError("tree arity must be at least 2")
    vectors = list(vectors)
    if not vectors:
        raise ValueError("cannot sum an empty sequence of vectors")
    # leaf level: copy each group head so callers' vectors are never mutated
    level = []
    for start in range(0, len(vectors), arity):
        group = vectors[start:start + arity]
        head = group[0].copy()
        for v in group[1:]:
            head.add_(v)
        level.append(head)
    # internal levels: heads are already owned by the fold
    while len(level) > 1:
        merged = []
        for start in range(0, len(level), arity):
            group = level[start:start + arity]
            head = group[0]
            for v in group[1:]:
                head.add_(v)
            merged.append(head)
        level = merged
    return level[0]


class StreamingTreeAggregator:
    """Fold an unbounded ciphertext stream with O(log N) partials and depth.

    The generalised binary-counter aggregator: digit ``d`` of a base-*arity*
    counter holds up to ``arity − 1`` partial sums covering ``arity^d``
    clients each.  Pushing a ciphertext increments digit 0; a full digit is
    merged into one partial and carried.  At any moment at most
    ``(arity − 1) · ⌈log_arity N⌉`` partials are alive — the aggregator's
    whole state — so streaming registration over N = 10^6 clients stores a
    few dozen ciphertext vectors, never N.

    The final :meth:`combined` result is bit-identical to the flat fold
    (Paillier addition is associative/commutative); :attr:`depth` reports the
    longest chain of dependent additions actually performed, which stays
    O(log N) — the property the scale tests assert.

    Duck-typed like :func:`tree_sum`: anything with ``copy``/``add_`` folds.

    Example
    -------
    >>> from repro.crypto import generate_keypair
    >>> public, private = generate_keypair(key_size=256)
    >>> agg = StreamingTreeAggregator(arity=2)
    >>> for i in range(4):
    ...     agg.push(PackedEncryptedVector.encrypt(public, [i / 4]))
    >>> agg.count, agg.depth
    (4, 2)
    >>> agg.combined().decrypt(private).tolist()
    [1.5]
    """

    def __init__(self, arity: int = 2):
        if arity < 2:
            raise ValueError("tree arity must be at least 2")
        self.arity = arity
        self.count = 0
        # digit d: list of (partial, depth) pairs, each covering arity^d pushes
        self._digits: list[list[tuple[object, int]]] = []

    def push(self, vector) -> None:
        """Absorb one ciphertext vector (the vector itself is not mutated)."""
        self.count += 1
        carry: tuple[object, int] | None = (vector, 0)
        d = 0
        while carry is not None:
            if d == len(self._digits):
                self._digits.append([])
            digit = self._digits[d]
            digit.append(carry)
            carry = None
            if len(digit) == self.arity:
                self._digits[d] = []
                carry = self._merge(digit)
            d += 1

    def _merge(self, partials: list[tuple[object, int]]) -> tuple[object, int]:
        """Fold a digit's partials into one, tracking the addition chain."""
        head, depth = partials[0]
        head = head.copy()
        for vector, d in partials[1:]:
            head.add_(vector)
            depth = max(depth, d) + 1
        return head, depth

    def combined(self):
        """The sum of everything pushed so far (leaves the state intact)."""
        alive = [pair for digit in self._digits for pair in digit]
        if not alive:
            raise ValueError("cannot combine an empty aggregator")
        return self._merge(alive)[0]

    @property
    def depth(self) -> int:
        """Longest chain of dependent additions in :meth:`combined`'s result."""
        alive = [pair for digit in self._digits for pair in digit]
        if not alive:
            return 0
        depth = alive[0][1]
        for _, d in alive[1:]:
            depth = max(depth, d) + 1
        return depth

    @property
    def partials(self) -> int:
        """Number of partial sums currently held (O(arity · log N))."""
        return sum(len(digit) for digit in self._digits)

    def reset(self) -> None:
        """Drop all state and start a fresh aggregation."""
        self.count = 0
        self._digits = []
