"""Scale regression suite: N = 10^5 memory bounds and equivalence.

Two families of guarantees keep the million-client path honest:

* **memory** — streaming registration holds peak allocation to O(batch),
  asserted via ``tracemalloc`` against a generous-but-fixed ceiling.  An
  accidental ``list(...)`` materialisation of per-client results (or one-hot
  registries) at N = 10^5 allocates an order of magnitude more than the
  ceiling and fails here before it reaches CI's nightly N = 10^6 sweep.
* **equivalence** — the vectorised probability / greedy / tentative-draw
  rewrites match the original per-client reference implementations (kept
  verbatim in this file) element-for-element on seeded draws at N = 10^5,
  and registration/probabilities are equivariant under client reordering.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.config import DubheConfig
from repro.core.probability import (
    bernoulli_participation,
    expected_participants,
    participation_probability,
)
from repro.core.registry import RegistryCodebook
from repro.core.secure import SecureRegistrationRound
from repro.core.selectors import DubheSelector, GreedySelector

N_LARGE = 100_000
BATCH = 4096

#: Fixed ceiling for streaming plaintext registration at N = 10^5 with the
#: default batch size: the measured peak is ~1.1 MB, an accidental one-hot
#: materialisation alone is ≥ 44 MB.  Generous headroom, but any O(N) slip
#: trips it.
STREAM_CEILING_BYTES = 16 * 2**20

#: Fixed ceiling for the secure streaming round below (N = 8192, 32-bit toy
#: key, count packing, batch 512): streaming peaks well under 2 MB; holding
#: every client's ciphertext vector or one-hot registry would not fit.
SECURE_STREAM_CEILING_BYTES = 8 * 2**20


def scale_config(k=1000, batch=BATCH, key_size=32, reference_set=(1, 2, 10)):
    thresholds = {1: 0.7, 10: 0.0}
    if 2 in reference_set:
        thresholds[2] = 0.1
    return DubheConfig(num_classes=10, reference_set=reference_set,
                       thresholds=thresholds, participants_per_round=k,
                       tentative_selections=4, key_size=key_size,
                       registration_batch_size=batch)


def skewed_population(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.dirichlet(np.full(10, 0.3), size=n)


class TestStreamingMemory:
    def test_streaming_registration_peak_is_o_batch(self):
        config = scale_config()
        codebook = RegistryCodebook(config)
        # the ceiling must be far below what any O(N) materialisation costs,
        # or this test has no teeth
        one_hot_bytes = N_LARGE * codebook.length * 8
        assert one_hot_bytes > 2 * STREAM_CEILING_BYTES
        rng = np.random.default_rng(1)
        counts = np.zeros(codebook.length)
        tracemalloc.start()
        tracemalloc.reset_peak()
        remaining = N_LARGE
        while remaining:
            b = min(BATCH, remaining)
            chunk = rng.dirichlet(np.full(10, 0.3), size=b)
            batch = codebook.register_batch(chunk)
            counts += np.bincount(batch.indices, minlength=codebook.length)
            remaining -= b
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert counts.sum() == N_LARGE
        assert peak < STREAM_CEILING_BYTES, (
            f"streaming registration peaked at {peak / 2**20:.1f} MB "
            f"(> {STREAM_CEILING_BYTES / 2**20:.0f} MB ceiling): something "
            "is materialising O(N) state"
        )

    def test_secure_run_stream_peak_is_o_batch(self):
        n = 8192
        config = scale_config(k=64, batch=512, key_size=32,
                              reference_set=(1, 10))
        distributions = skewed_population(n, seed=2)
        round_ = SecureRegistrationRound(config, packed=True,
                                         aggregation="tree")
        tracemalloc.start()
        tracemalloc.reset_peak()
        streamed = round_.run_stream(distributions)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert streamed.n_clients == n
        assert streamed.overall.sum() == n
        assert peak < SECURE_STREAM_CEILING_BYTES, (
            f"secure streaming peaked at {peak / 2**20:.1f} MB: the round is "
            "holding more than O(batch) ciphertexts or registries"
        )


class TestLargeNEquivalence:
    @pytest.fixture(scope="class")
    def setup(self):
        config = scale_config()
        distributions = skewed_population(N_LARGE, seed=3)
        selector = DubheSelector(distributions, config, seed=11)
        return config, distributions, selector

    def test_probabilities_match_scalar_reference(self, setup):
        config, _, selector = setup
        overall = selector.overall_registry
        k = config.participants_per_round
        sample = np.random.default_rng(4).choice(N_LARGE, size=2000,
                                                 replace=False)
        for idx in sample:
            expected = participation_probability(
                overall, int(selector.registration_batch.indices[idx]), k)
            assert selector.probabilities[idx] == expected  # bit-identical

    def test_probability_identities_hold(self, setup):
        config, _, selector = setup
        overall = selector.overall_registry
        k = config.participants_per_round
        # eq. (7): E|S_t| == K when nothing saturates; vectorised == manual
        manual = sum(
            float(c) * min(1.0, k / (float(c) * np.count_nonzero(overall)))
            for c in overall[overall > 0]
        )
        assert expected_participants(overall, k) == pytest.approx(manual)
        if selector.probabilities.max() < 1.0:
            assert expected_participants(overall, k) == pytest.approx(k)
        # every client in a category shares one probability
        indices = selector.registration_batch.indices
        assert np.array_equal(
            selector.probabilities,
            np.minimum(1.0, k / (overall[indices] * np.count_nonzero(overall))),
        )

    def test_tentative_draw_matches_list_reference(self, setup):
        config, _, selector = setup

        def reference_draw(probabilities, n_clients, k, rng):
            # the original list-based draw, kept verbatim as the reference
            volunteers = bernoulli_participation(probabilities, rng=rng)
            pool = list(int(v) for v in volunteers)
            if len(pool) > k:
                keep = rng.choice(len(pool), size=k, replace=False)
                pool = [pool[i] for i in keep]
            elif len(pool) < k:
                outside = np.setdiff1d(np.arange(n_clients),
                                       np.asarray(pool, dtype=int))
                extra = rng.choice(outside, size=k - len(pool), replace=False)
                pool.extend(int(e) for e in extra)
            return pool

        k = config.participants_per_round
        for seed in (0, 1, 2):
            rng_ref = np.random.default_rng(seed)
            expected = reference_draw(selector.probabilities, N_LARGE, k,
                                      rng_ref)
            fresh = DubheSelector(selector.client_distributions, config,
                                  seed=seed)
            draw = fresh._tentative_draw(0)
            assert len(draw) == k
            assert [int(c) for c in draw] == expected

    def test_select_matches_reference_draw_pipeline(self, setup):
        config, distributions, _ = setup

        class ReferenceDubheSelector(DubheSelector):
            def _tentative_draw(self, _h):
                volunteers = bernoulli_participation(self.probabilities,
                                                     rng=self.rng)
                pool = list(int(v) for v in volunteers)
                k = self.participants_per_round
                if len(pool) > k:
                    keep = self.rng.choice(len(pool), size=k, replace=False)
                    pool = [pool[i] for i in keep]
                elif len(pool) < k:
                    outside = np.setdiff1d(np.arange(self.n_clients),
                                           np.asarray(pool, dtype=int))
                    extra = self.rng.choice(outside, size=k - len(pool),
                                            replace=False)
                    pool.extend(int(e) for e in extra)
                return pool

        vectorised = DubheSelector(distributions, config, seed=42)
        reference = ReferenceDubheSelector(distributions, config, seed=42)
        for round_index in range(3):
            picked = vectorised.select(round_index)
            expected = reference.select(round_index)
            assert picked == expected
            assert all(isinstance(c, int) for c in picked)
            assert vectorised.last_bias == reference.last_bias

    def test_greedy_matches_shrinking_reference(self):
        distributions = skewed_population(N_LARGE, seed=5)
        k = 16

        def reference_greedy(distributions, k, rng):
            # pre-rewrite greedy: re-normalise the full candidate population
            # for every remaining client at every pick
            n = distributions.shape[0]
            uniform = np.full(distributions.shape[1],
                              1.0 / distributions.shape[1])
            log_uniform = np.log(uniform)
            first = int(rng.integers(n))
            selected = [first]
            running = distributions[first].copy()
            available = np.ones(n, dtype=bool)
            available[first] = False
            while len(selected) < k:
                candidate_pop = running[None, :] + distributions
                candidate_pop /= candidate_pop.sum(axis=1, keepdims=True)
                np.clip(candidate_pop, 1e-12, None, out=candidate_pop)
                kl = np.sum(candidate_pop * (np.log(candidate_pop)
                                             - log_uniform), axis=1)
                kl[~available] = np.inf
                best = int(np.argmin(kl))
                selected.append(best)
                running += distributions[best]
                available[best] = False
            return selected

        selector = GreedySelector(distributions, k, seed=7)
        expected = reference_greedy(distributions, k,
                                    np.random.default_rng(7))
        assert selector.select(0) == expected

    def test_registration_and_probabilities_are_permutation_equivariant(
            self, setup):
        config, distributions, selector = setup
        perm = np.random.default_rng(8).permutation(N_LARGE)
        permuted = DubheSelector(distributions[perm], config, seed=11)
        assert np.array_equal(permuted.registration_batch.indices,
                              selector.registration_batch.indices[perm])
        assert np.array_equal(permuted.overall_registry,
                              selector.overall_registry)
        assert np.array_equal(permuted.probabilities,
                              selector.probabilities[perm])

    def test_expected_pool_size_tracks_k(self, setup):
        config, _, selector = setup
        draws = [selector._tentative_draw(h) for h in range(5)]
        assert {len(d) for d in draws} == {config.participants_per_round}
