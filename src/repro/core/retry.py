"""Capped, jittered retry backoff shared by both sides of the service layer.

Before this module existed the transport had two diverging spellings of the
same idea: the server's registration wait clamped its exponential backoff
(``min(backoff * 2**attempt, remaining)``) while the client's connect loop
slept a raw ``backoff * 2**attempt`` — unbounded, so a handful of retries
against a crashed server could sleep for minutes.  :class:`RetryPolicy` is
the single source of truth: exponential growth, a hard ceiling, and
*deterministic* jitter (seeded per ``(seed, attempt)`` exactly like the
scenario engine's :class:`~repro.scenarios.engine.FaultInjector` keys its
fault decisions), so a reconnecting fleet neither thunders in lockstep nor
makes a test non-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a hard cap and deterministic jitter.

    ``delay(attempt)`` grows as ``backoff * 2**attempt`` but never exceeds
    ``max_backoff``; ``jitter`` then shaves off up to that fraction of the
    delay, drawn from an RNG keyed by ``(seed, attempt)`` — two policies
    with different seeds desynchronise (no thundering herd on reconnect),
    while the same policy always produces the same schedule (tests stay
    reproducible).  ``retries`` is how many times an operation is retried
    *after* its first attempt, i.e. ``attempts == retries + 1``.

    Example
    -------
    >>> policy = RetryPolicy(retries=3, backoff=0.1, max_backoff=0.25,
    ...                      jitter=0.0)
    >>> [policy.delay(a) for a in range(4)]
    [0.1, 0.2, 0.25, 0.25]
    """

    retries: int = 5
    backoff: float = 0.05
    max_backoff: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")
        if self.max_backoff <= 0:
            raise ValueError("max_backoff must be positive")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        if int(self.seed) != self.seed or self.seed < 0:
            raise ValueError("seed must be a non-negative integer")

    @property
    def attempts(self) -> int:
        """Total attempts this policy allows (first try plus retries).

        Example
        -------
        >>> RetryPolicy(retries=2).attempts
        3
        """
        return self.retries + 1

    def delay(self, attempt: int) -> float:
        """Seconds to sleep after failed attempt *attempt* (0-based).

        The base delay ``backoff * 2**attempt`` is clamped to
        ``max_backoff`` *before* jitter is applied, and jitter only ever
        subtracts — the returned delay never exceeds ``max_backoff``, the
        regression the old client connect loop lacked.

        Example
        -------
        >>> policy = RetryPolicy(backoff=0.05, max_backoff=2.0, jitter=0.5,
        ...                      seed=7)
        >>> all(policy.delay(a) <= 2.0 for a in range(30))
        True
        >>> policy.delay(9) == policy.delay(9)  # deterministic per attempt
        True
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        base = min(self.backoff * (2 ** attempt), self.max_backoff)
        if base <= 0 or self.jitter == 0:
            return base
        fraction = np.random.default_rng([self.seed, attempt]).random()
        return base * (1.0 - self.jitter * fraction)

    def delays(self) -> Iterator[float]:
        """The full backoff schedule: one delay per allowed retry.

        Example
        -------
        >>> list(RetryPolicy(retries=2, backoff=0.1, max_backoff=1.0,
        ...                  jitter=0.0).delays())
        [0.1, 0.2]
        """
        for attempt in range(self.retries):
            yield self.delay(attempt)
