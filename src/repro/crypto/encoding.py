"""Fixed-point encoding of numbers for Paillier encryption.

Paillier operates on integers modulo ``n``.  Dubhe must encrypt two kinds of
payloads:

* **registries** — vectors of small non-negative integers (0/1 indicators and
  their sums over clients), and
* **label distributions** ``p_l`` — vectors of floats in ``[0, 1]``.

Floats are mapped to integers with a fixed-point encoding
``encode(x) = round(x * BASE**precision)``.  Because the encoding is linear,
adding encoded values (homomorphically, under encryption) corresponds to
adding the original floats — exactly the aggregation Dubhe's server performs.
Negative values are supported by exploiting the upper half of ``Z_n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .paillier import PaillierPublicKey

__all__ = ["FixedPointEncoder", "EncodedNumber", "DEFAULT_PRECISION", "DEFAULT_BASE"]

#: Number of fractional digits (in base :data:`DEFAULT_BASE`) kept by the
#: default encoder.  1e-12 resolution is far below the statistical noise of
#: any label-distribution estimate.
DEFAULT_PRECISION = 12

#: Base of the fixed-point representation.
DEFAULT_BASE = 10

Number = Union[int, float]


@dataclass(frozen=True)
class EncodedNumber:
    """An integer fixed-point representation of a number.

    Attributes
    ----------
    encoding:
        The signed integer ``round(value * base**precision)``.
    base, precision:
        Encoding parameters; two encoded numbers can only be added when these
        match (enforced by :class:`FixedPointEncoder` and the vector layer).
    """

    encoding: int
    base: int = DEFAULT_BASE
    precision: int = DEFAULT_PRECISION

    @property
    def scale(self) -> int:
        """The integer scale factor ``base**precision``."""
        return self.base**self.precision

    def decode(self) -> float:
        """Recover the (approximate) original float."""
        return self.encoding / self.scale

    def __add__(self, other: "EncodedNumber") -> "EncodedNumber":
        if not isinstance(other, EncodedNumber):
            return NotImplemented
        if other.base != self.base or other.precision != self.precision:
            raise ValueError("cannot add EncodedNumbers with different scales")
        return EncodedNumber(self.encoding + other.encoding, self.base, self.precision)


class FixedPointEncoder:
    """Encode/decode floats as integers compatible with a Paillier modulus."""

    def __init__(self, base: int = DEFAULT_BASE, precision: int = DEFAULT_PRECISION):
        if base < 2:
            raise ValueError("base must be >= 2")
        if precision < 0:
            raise ValueError("precision must be non-negative")
        self.base = base
        self.precision = precision
        self.scale = base**precision

    # -- scalar API ---------------------------------------------------------

    def encode(self, value: Number) -> EncodedNumber:
        """Encode a number into fixed point."""
        if isinstance(value, bool):  # bools are ints but almost surely a bug
            raise TypeError("refusing to encode bool; pass 0/1 ints explicitly")
        if not isinstance(value, (int, float)):
            raise TypeError(f"cannot encode {type(value).__name__}")
        return EncodedNumber(round(value * self.scale), self.base, self.precision)

    def decode(self, encoded: EncodedNumber) -> float:
        """Decode an :class:`EncodedNumber` back to a float."""
        if encoded.base != self.base or encoded.precision != self.precision:
            raise ValueError("encoded number does not match this encoder's scale")
        return encoded.decode()

    # -- modulus mapping ----------------------------------------------------

    def to_modular(self, encoded: EncodedNumber, public_key: PaillierPublicKey) -> int:
        """Map a signed encoding into ``Z_n`` (negatives wrap to the top half)."""
        value = encoded.encoding
        if abs(value) > public_key.max_int:
            raise OverflowError(
                f"encoded value {value} exceeds the plaintext capacity of a "
                f"{public_key.key_size}-bit key"
            )
        return value % public_key.n

    def from_modular(self, value: int, public_key: PaillierPublicKey) -> EncodedNumber:
        """Inverse of :meth:`to_modular` (values above n/2 are negative)."""
        n = public_key.n
        if value > n // 2:
            value -= n
        return EncodedNumber(value, self.base, self.precision)

    def decode_modular(self, value: int, public_key: PaillierPublicKey) -> float:
        """Convenience: map a decrypted residue straight back to a float."""
        return self.from_modular(value, public_key).decode()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FixedPointEncoder(base={self.base}, precision={self.precision})"
