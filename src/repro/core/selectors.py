"""The three client-selection strategies compared in the paper.

* :class:`RandomSelector` — the baseline: ``K`` clients uniformly at random.
* :class:`GreedySelector` — the Astraea-style "optimal" bound: the server
  greedily builds the set that minimises the KL divergence between the
  selected population distribution and uniform.  It needs every client's
  plaintext label distribution, which is exactly the privacy leak Dubhe
  avoids; it is implemented here as the upper bound the paper compares
  against.
* :class:`DubheSelector` — the paper's contribution: clients register their
  dominating classes in a (homomorphically encryptable) registry, compute
  their own participation probability from the aggregated registry
  (eq. (6)), volunteer by Bernoulli draw, and the server only tops the pool
  up / trims it down to exactly ``K``.  Optional multi-time selection picks
  the most balanced of ``H`` tentative pools.

All selectors implement ``select(round_index) -> list[int]`` so they plug
into :class:`repro.federated.FederatedSimulation` interchangeably.

Every per-client step is array-at-a-time: registration runs through
:meth:`RegistryCodebook.register_batch`, probabilities through the
vectorised eq. (6), tentative draws through boolean masks, and greedy
scoring through pre-allocated ``(N, C)`` buffers — so a million-client
selector holds a handful of contiguous float64/int64 arrays and performs no
per-client Python loops (asserted bit-identical to the reference
implementations by the scale-equivalence suite).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.distributions import kl_divergence, uniform_distribution
from .config import DubheConfig
from .multitime import MultiTimeResult, multi_time_selection
from .probability import bernoulli_participation, participation_probabilities
from .registry import BatchRegistration, RegistrationResult, RegistryCodebook

__all__ = ["ClientSelector", "RandomSelector", "GreedySelector", "DubheSelector"]


class ClientSelector:
    """Common interface and bookkeeping of all selection strategies.

    Example
    -------
    >>> import numpy as np
    >>> s = ClientSelector(np.array([[0.5, 0.5], [1.0, 0.0]]), 1, seed=0)
    >>> s.bias_of([0])
    0.0
    """

    name = "base"

    def __init__(self, client_distributions: np.ndarray, participants_per_round: int,
                 seed: Optional[int] = None):
        distributions = np.ascontiguousarray(client_distributions, dtype=np.float64)
        if distributions.ndim != 2:
            raise ValueError("client_distributions must be 2-D (clients x classes)")
        if distributions.shape[0] < 1:
            raise ValueError("need at least one client")
        if participants_per_round < 1:
            raise ValueError("participants_per_round must be positive")
        if participants_per_round > distributions.shape[0]:
            raise ValueError("cannot select more clients than exist")
        self.client_distributions = distributions
        self.n_clients, self.num_classes = distributions.shape
        self.participants_per_round = participants_per_round
        self.rng = np.random.default_rng(seed)
        self.uniform = uniform_distribution(self.num_classes)

    # -- helpers -------------------------------------------------------------------

    def population_of(self, selected: Sequence[int]) -> np.ndarray:
        """Population distribution ``p_o`` of a candidate participant set."""
        idx = np.asarray(list(selected), dtype=int)
        return self.client_distributions[idx].mean(axis=0)

    def bias_of(self, selected: Sequence[int]) -> float:
        """``||p_o − p_u||₁`` of a candidate participant set."""
        return float(np.abs(self.population_of(selected) - self.uniform).sum())

    def populations_of(self, candidates: Sequence[Sequence[int]]) -> np.ndarray:
        """Population distributions of several candidate sets at once.

        Equal-sized candidate sets (the common case: every tentative draw is
        topped up/trimmed to K) are scored with a single fancy-index and one
        mean over the member axis; ragged sets fall back to per-candidate
        calls.  Row ``h`` equals ``population_of(candidates[h])``.
        """
        sizes = {len(c) for c in candidates}
        if len(sizes) == 1:
            idx = np.asarray([tuple(c) for c in candidates], dtype=int)
            return self.client_distributions[idx].mean(axis=1)
        return np.stack([self.population_of(c) for c in candidates])

    def select(self, round_index: int) -> list[int]:
        """Pick the round's participant set (subclasses implement this)."""
        raise NotImplementedError


class RandomSelector(ClientSelector):
    """Uniformly random selection of ``K`` clients (the FL default).

    Example
    -------
    >>> import numpy as np
    >>> s = RandomSelector(np.full((4, 2), 0.5), 2, seed=0)
    >>> sorted(set(s.select(0)) - set(range(4)))
    []
    """

    name = "random"

    def select(self, round_index: int) -> list[int]:
        """``K`` clients uniformly at random, without replacement."""
        chosen = self.rng.choice(self.n_clients, size=self.participants_per_round, replace=False)
        return [int(c) for c in chosen]


class GreedySelector(ClientSelector):
    """Astraea-style greedy selection minimising KL(p_o || p_u).

    Requires global knowledge of every client's label distribution (not
    privacy-preserving) and costs ``O(N·C)`` work per pick — both drawbacks
    the paper quantifies.  Serves as the optimal reference ("opt"/"greedy"
    curves).

    Each pick maintains a running population sum (an O(C) update) and scores
    *all* N candidates with one vectorised ``argmin``: already-selected
    clients are masked to ``+inf`` instead of being re-gathered through a
    shrinking index array, so a step performs no per-candidate Python calls
    and no fancy-index copies of the distribution matrix.  The ``(N, C)``
    scratch buffers are allocated once per ``select`` call and reused by
    every pick (``out=`` kernels, same floating-point operation order per
    element as the allocating version — the regression suite holds the picks
    bit-identical).

    Example
    -------
    >>> import numpy as np
    >>> s = GreedySelector(np.eye(2), 2, seed=0)
    >>> sorted(s.select(0))
    [0, 1]
    """

    name = "greedy"

    def select(self, round_index: int) -> list[int]:
        """Greedily grow the set whose population KL to uniform is minimal."""
        distributions = self.client_distributions
        log_uniform = np.log(self.uniform)
        first = int(self.rng.integers(self.n_clients))
        selected = [first]
        running = distributions[first].copy()  # running population sum, O(C) to update
        available = np.ones(self.n_clients, dtype=bool)
        available[first] = False
        pop = np.empty_like(distributions)          # (N, C) candidate populations
        term = np.empty_like(distributions)         # (N, C) per-class KL terms
        sums = np.empty((self.n_clients, 1))
        kl = np.empty(self.n_clients)
        while len(selected) < self.participants_per_round:
            # population distribution of every candidate joining, all N at once
            np.add(running[None, :], distributions, out=pop)
            np.sum(pop, axis=1, keepdims=True, out=sums)
            pop /= sums
            np.clip(pop, 1e-12, None, out=pop)
            # KL(p_o || p_u) per candidate; taken clients cannot win the argmin
            np.log(pop, out=term)
            term -= log_uniform
            term *= pop
            np.sum(term, axis=1, out=kl)
            kl[~available] = np.inf
            best = int(np.argmin(kl))
            selected.append(best)
            running += distributions[best]
            available[best] = False
        return selected


class DubheSelector(ClientSelector):
    """The Dubhe proactive, privacy-preserving selection strategy.

    Registration, aggregation and probability computation all run on the
    batch path (:meth:`RegistryCodebook.register_batch` → int64 index
    arrays → one ``bincount`` → one vectorised eq. (6)), so constructing a
    selector over N = 10^6 clients allocates O(N) integers, not N one-hot
    vectors.  The per-client :attr:`registrations` list of the original
    implementation is still available — materialised lazily on first access.

    Example
    -------
    >>> import numpy as np
    >>> config = DubheConfig(num_classes=2, reference_set=(1, 2),
    ...                      thresholds={1: 0.9, 2: 0.0},
    ...                      participants_per_round=2)
    >>> s = DubheSelector(np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]]),
    ...                   config, seed=0)
    >>> s.overall_registry.tolist()
    [1.0, 1.0, 1.0]
    """

    name = "dubhe"

    def __init__(self, client_distributions: np.ndarray, config: DubheConfig,
                 seed: Optional[int] = None, rebalance_to_k: bool = True):
        super().__init__(client_distributions, config.participants_per_round, seed=seed)
        if config.num_classes != self.num_classes:
            raise ValueError("config num_classes does not match client distributions")
        if not config.has_all_thresholds():
            raise ValueError(
                "DubheConfig is missing thresholds; run repro.core.parameter_search first"
            )
        self.config = config
        self.rebalance_to_k = rebalance_to_k
        self.codebook = RegistryCodebook(config)
        self._register_all()
        self.last_result: Optional[MultiTimeResult] = None

    def _register_all(self) -> None:
        """Run Algorithm 1 + aggregation + eq. (6) over all clients, batched."""
        self.registration_batch: BatchRegistration = self.codebook.register_batch(
            self.client_distributions)
        self._registrations: Optional[list[RegistrationResult]] = None
        self.overall_registry = self.registration_batch.overall_registry()
        self.probabilities = participation_probabilities(
            self.codebook, self.registration_batch, self.overall_registry,
            self.config.participants_per_round,
        )

    @property
    def registrations(self) -> list[RegistrationResult]:
        """Per-client :class:`RegistrationResult` list (materialised lazily).

        Kept for compatibility with paper-scale callers; costs O(N·L) memory,
        so million-client code should use :attr:`registration_batch` instead.
        """
        if self._registrations is None:
            self._registrations = self.codebook.materialize_results(self.registration_batch)
        return self._registrations

    # -- registration refresh -----------------------------------------------------

    def refresh_registrations(self, client_distributions: Optional[np.ndarray] = None) -> None:
        """Re-run registration (the paper's periodic re-registration)."""
        if client_distributions is not None:
            distributions = np.ascontiguousarray(client_distributions, dtype=np.float64)
            if distributions.shape != self.client_distributions.shape:
                raise ValueError("new distributions must have the same shape")
            self.client_distributions = distributions
        self._register_all()

    # -- one tentative draw ----------------------------------------------------------

    def _tentative_draw(self, _h: int) -> np.ndarray:
        """One proactive participation draw, topped up / trimmed to exactly K.

        Array-native version of the original list-based draw: identical RNG
        stream (one uniform block for the Bernoulli step, then the same
        ``choice`` calls on the same arguments), so seeded selections match
        the reference implementation element for element.
        """
        volunteers = bernoulli_participation(self.probabilities, rng=self.rng)
        pool = volunteers.astype(np.int64, copy=False)
        k = self.participants_per_round
        if not self.rebalance_to_k:
            return pool
        if pool.size > k:
            keep = self.rng.choice(pool.size, size=k, replace=False)
            pool = pool[keep]
        elif pool.size < k:
            inside = np.zeros(self.n_clients, dtype=bool)
            inside[pool] = True
            outside = np.flatnonzero(~inside)  # == setdiff1d(arange(N), pool)
            extra = self.rng.choice(outside, size=k - pool.size, replace=False)
            pool = np.concatenate([pool, extra])
        return pool

    # -- public API --------------------------------------------------------------------

    def select(self, round_index: int) -> list[int]:
        """Run ``H`` tentative draws and keep the least-biased pool."""
        result = multi_time_selection(
            draw=self._tentative_draw,
            population_of=self.population_of,
            uniform=self.uniform,
            tries=self.config.tentative_selections,
            population_of_many=self.populations_of,
        )
        self.last_result = result
        return [int(c) for c in result.best.candidate]

    @property
    def last_bias(self) -> float:
        """``EMD* = ||p_o,h* − p_u||₁`` of the most recent selection."""
        if self.last_result is None:
            raise RuntimeError("no selection has been performed yet")
        return self.last_result.best_score
