"""Crypto throughput: packed + precomputed-noise pipeline vs per-component.

The §6.4 overhead study costs the secure protocol at one ciphertext per
registry component.  The packed pipeline (``repro.crypto.packing`` +
``NoisePool``) must beat that baseline by a wide margin on the paper's own
registry workload — this benchmark enforces the acceptance bar (≥ 5× faster
encryption for 100 clients × length-56 registries at 256-bit keys) and
checks the two pipelines stay bit-identical.

``benchmarks/bench_crypto.py`` runs the same measurement across key sizes
and records it in ``BENCH_crypto.json``.
"""

from __future__ import annotations

import random
from time import perf_counter

import numpy as np
import pytest

from bench_crypto import bench_key_size, registry_workload
from helpers import print_table
from repro.crypto import (
    EncryptedVector,
    NoisePool,
    PackedEncryptedVector,
    PackingScheme,
    generate_keypair,
)

KEY_SIZE = 256
N_CLIENTS = 100
REGISTRY_LENGTH = 56
MIN_ENCRYPT_SPEEDUP = 5.0


def paper_scale() -> dict:
    return {"key_size": 2048, "n_clients": (1000, 8962),
            "registry_length": (56, 53),
            "paper_per_registry": {"encrypt_s": 6.9, "decrypt_s": 1.9}}


@pytest.mark.benchmark(group="crypto")
def test_packed_pipeline_throughput(benchmark):
    """100 clients × length-56 registries at 256-bit keys, both pipelines."""

    def experiment():
        return bench_key_size(KEY_SIZE, N_CLIENTS, REGISTRY_LENGTH)

    row = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("crypto throughput: per-component vs packed", [{
        "pipeline": name,
        "ciphertexts/client": row[name]["ciphertexts_per_client"],
        "wire_kb/client": round(row[name]["wire_bytes_per_client"] / 1024, 2),
        "encrypt_s": row[name]["encrypt_s"],
        "aggregate_s": row[name]["aggregate_s"],
        "decrypt_s": row[name]["decrypt_s"],
    } for name in ("per_component", "packed")])

    speedup = row["speedup"]
    # the tentpole acceptance bar: packed encryption ≥ 5× faster online
    assert speedup["encrypt"] >= MIN_ENCRYPT_SPEEDUP, speedup
    # packing must also shrink the wire and speed up aggregate decryption
    assert speedup["wire"] > 1.0
    assert row["packed"]["wire_bytes_per_client"] < row["per_component"]["wire_bytes_per_client"]
    # fewer ciphertexts per registry is the whole point
    assert row["packed"]["ciphertexts_per_client"] < REGISTRY_LENGTH


@pytest.mark.benchmark(group="crypto")
def test_noise_pool_amortizes_encryption(benchmark):
    """With precomputed noise, per-component encryption drops the pow()."""

    keypair = generate_keypair(KEY_SIZE, rng=random.Random(0))
    pk = keypair.public_key
    vectors = registry_workload(10, REGISTRY_LENGTH)

    def experiment():
        start = perf_counter()
        cold = [EncryptedVector.encrypt(pk, v) for v in vectors]
        cold_s = perf_counter() - start
        pool = NoisePool(pk)
        pool.refill(REGISTRY_LENGTH * len(vectors))
        start = perf_counter()
        warm = [EncryptedVector.encrypt(pk, v, noise=pool) for v in vectors]
        warm_s = perf_counter() - start
        return cold, cold_s, warm, warm_s

    cold, cold_s, warm, warm_s = benchmark.pedantic(experiment, rounds=1, iterations=1)
    # precomputed noise must pay off even without packing
    assert warm_s < cold_s
    # same plaintexts either way
    for a, b in zip(cold, warm):
        np.testing.assert_array_equal(a.decrypt(keypair.private_key),
                                      b.decrypt(keypair.private_key))


@pytest.mark.benchmark(group="crypto")
def test_packed_aggregate_matches_per_component_bitwise(benchmark):
    """Deep aggregation at the n_clients headroom stays bit-identical."""

    keypair = generate_keypair(KEY_SIZE, rng=random.Random(1))
    pk, sk = keypair.public_key, keypair.private_key
    vectors = registry_workload(N_CLIENTS, REGISTRY_LENGTH)

    def experiment():
        scheme = PackingScheme(pk, REGISTRY_LENGTH, max_weight=N_CLIENTS)
        packed = PackedEncryptedVector.sum([
            PackedEncryptedVector.encrypt(pk, v, scheme=scheme) for v in vectors[:20]
        ]).decrypt(sk)
        plain = np.sum(vectors[:20], axis=0)
        return packed, plain

    packed, plain = benchmark.pedantic(experiment, rounds=1, iterations=1)
    np.testing.assert_array_equal(packed, plain)
