"""Prime-number generation utilities for the Paillier cryptosystem.

The Paillier keypair needs two independent large primes ``p`` and ``q`` of
equal bit length.  This module implements the standard pipeline used by
production HE libraries:

1. draw a random odd candidate of the requested bit length,
2. reject candidates divisible by a small prime (cheap sieve),
3. run a Miller--Rabin probabilistic primality test with enough rounds that
   the error probability is far below 2**-80.

Everything is implemented on top of Python's arbitrary-precision integers;
``secrets`` supplies cryptographically secure randomness while a seeded
``random.Random`` can be injected for reproducible tests.
"""

from __future__ import annotations

import random
import secrets
from typing import Optional

__all__ = [
    "SMALL_PRIMES",
    "is_probable_prime",
    "generate_prime",
    "generate_distinct_primes",
]


def _sieve_of_eratosthenes(limit: int) -> list[int]:
    """Return every prime strictly below *limit* (simple sieve)."""
    if limit < 3:
        return []
    flags = bytearray([1]) * limit
    flags[0] = flags[1] = 0
    for i in range(2, int(limit**0.5) + 1):
        if flags[i]:
            flags[i * i :: i] = bytearray(len(flags[i * i :: i]))
    return [i for i, f in enumerate(flags) if f]


#: Small primes used to cheaply reject composite candidates before the more
#: expensive Miller--Rabin rounds.
SMALL_PRIMES: tuple[int, ...] = tuple(_sieve_of_eratosthenes(2000))


def _miller_rabin_round(n: int, a: int, d: int, r: int) -> bool:
    """One Miller--Rabin witness round.

    Returns ``True`` when *a* does **not** witness the compositeness of *n*
    (i.e. *n* is still possibly prime).
    """
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, rounds: int = 40, rng: Optional[random.Random] = None) -> bool:
    """Miller--Rabin probabilistic primality test.

    Parameters
    ----------
    n:
        Candidate integer.
    rounds:
        Number of random witnesses.  40 rounds gives an error probability
        below ``4**-40``, which is the conventional choice for key material.
    rng:
        Optional deterministic random source (tests); defaults to
        ``secrets``-based randomness.
    """
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # write n-1 = d * 2^r with d odd
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        if rng is None:
            a = secrets.randbelow(n - 3) + 2
        else:
            a = rng.randrange(2, n - 1)
        if not _miller_rabin_round(n, a, d, r):
            return False
    return True


def generate_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Generate a random probable prime with exactly *bits* bits.

    The two top bits are forced to 1 so that the product of two such primes
    has exactly ``2 * bits`` bits, which keeps ciphertext sizes predictable.
    """
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits (minimum 8)")
    while True:
        if rng is None:
            candidate = secrets.randbits(bits)
        else:
            candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1  # top bits + odd
        if is_probable_prime(candidate, rng=rng):
            return candidate


def generate_distinct_primes(bits: int, rng: Optional[random.Random] = None) -> tuple[int, int]:
    """Generate two distinct probable primes of *bits* bits each."""
    p = generate_prime(bits, rng=rng)
    q = generate_prime(bits, rng=rng)
    while q == p:
        q = generate_prime(bits, rng=rng)
    return p, q
