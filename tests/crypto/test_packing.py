"""Tests for ciphertext packing — packed ↔ per-component equivalence."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples

from repro.crypto.packing import DEFAULT_MAX_WEIGHT, PackedEncryptedVector, PackingScheme
from repro.crypto.paillier import NoisePool, generate_keypair
from repro.crypto.vector import EncryptedVector


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(key_size=256, rng=random.Random(777))


@pytest.fixture(scope="module")
def pk(keypair):
    return keypair.public_key


@pytest.fixture(scope="module")
def sk(keypair):
    return keypair.private_key


class TestPackingScheme:
    def test_many_slots_per_ciphertext(self, pk):
        scheme = PackingScheme(pk, vector_length=56, max_weight=100)
        assert scheme.slots_per_ciphertext > 1
        assert scheme.num_ciphertexts < 56
        assert scheme.num_ciphertexts == -(-56 // scheme.slots_per_ciphertext)

    def test_headroom_widens_slots(self, pk):
        narrow = PackingScheme(pk, 56, max_weight=2)
        wide = PackingScheme(pk, 56, max_weight=10_000)
        assert wide.slot_bits > narrow.slot_bits
        assert wide.slots_per_ciphertext <= narrow.slots_per_ciphertext

    def test_chunk_lengths_cover_vector(self, pk):
        scheme = PackingScheme(pk, 56, max_weight=100)
        lengths = scheme.chunk_lengths()
        assert sum(lengths) == 56
        assert len(lengths) == scheme.num_ciphertexts

    def test_slot_too_wide_for_modulus_rejected(self):
        tiny = generate_keypair(key_size=32, rng=random.Random(1)).public_key
        with pytest.raises(ValueError):
            PackingScheme(tiny, 8, max_weight=DEFAULT_MAX_WEIGHT)

    def test_invalid_arguments(self, pk):
        with pytest.raises(ValueError):
            PackingScheme(pk, 0)
        with pytest.raises(ValueError):
            PackingScheme(pk, 8, max_weight=0)
        with pytest.raises(ValueError):
            PackingScheme(pk, 8, max_abs_value=0.0)

    def test_encode_chunk_rejects_too_many_slots(self, pk):
        scheme = PackingScheme(pk, 56, max_weight=100)
        too_many = [0] * (scheme.slots_per_ciphertext + 2)
        with pytest.raises(OverflowError):
            scheme.encode_chunk(too_many)


class TestRoundtrip:
    def test_registry_like_vector(self, pk, sk):
        registry = np.zeros(56)
        registry[17] = 1.0
        out = PackedEncryptedVector.encrypt(pk, registry, max_weight=100).decrypt(sk)
        np.testing.assert_array_equal(out, registry)

    def test_negative_values(self, pk, sk):
        values = np.array([-1.0, -0.25, 0.0, 0.75, 1.0])
        out = PackedEncryptedVector.encrypt(pk, values, max_weight=16).decrypt(sk)
        np.testing.assert_array_equal(out, values)

    def test_matches_per_component_bitwise(self, pk, sk):
        rng = np.random.default_rng(0)
        values = rng.uniform(-1, 1, 30)
        per_component = EncryptedVector.encrypt(pk, values).decrypt(sk)
        packed = PackedEncryptedVector.encrypt(pk, values, max_weight=50).decrypt(sk)
        np.testing.assert_array_equal(per_component, packed)

    def test_wrong_key_rejected(self, pk):
        other = generate_keypair(key_size=256, rng=random.Random(9)).private_key
        with pytest.raises(ValueError):
            PackedEncryptedVector.encrypt(pk, [1.0], max_weight=4).decrypt(other)

    def test_len_is_logical_length(self, pk):
        packed = PackedEncryptedVector.encrypt(pk, np.zeros(56), max_weight=100)
        assert len(packed) == 56
        assert len(packed.ciphertexts) < 56

    def test_scheme_length_mismatch_rejected(self, pk):
        scheme = PackingScheme(pk, 8, max_weight=4)
        with pytest.raises(ValueError):
            PackedEncryptedVector.encrypt(pk, np.zeros(9), scheme=scheme)


class TestHomomorphicEquivalence:
    def test_add_scale_matches_per_component(self, pk, sk):
        rng = np.random.default_rng(1)
        a, b = rng.uniform(-1, 1, 20), rng.uniform(-1, 1, 20)
        expected = (
            (EncryptedVector.encrypt(pk, a) + EncryptedVector.encrypt(pk, b))
            .scale(3).decrypt(sk)
        )
        got = (
            (PackedEncryptedVector.encrypt(pk, a, max_weight=60)
             + PackedEncryptedVector.encrypt(pk, b, max_weight=60))
            .scale(3).decrypt(sk)
        )
        np.testing.assert_array_equal(expected, got)

    def test_sum_counts_categories(self, pk, sk):
        registries = [[0, 1, 0, 0, 0], [0, 1, 0, 0, 0], [0, 0, 0, 0, 1]]
        total = PackedEncryptedVector.sum([
            PackedEncryptedVector.encrypt(pk, r, max_weight=8) for r in registries
        ])
        np.testing.assert_array_equal(total.decrypt(sk), [0, 2, 0, 0, 1])

    def test_deep_sum_at_headroom_boundary(self, pk, sk):
        """A max_weight-deep sum of extreme values decodes exactly."""
        m = 50
        ones = [PackedEncryptedVector.encrypt(pk, np.ones(6), max_weight=m)
                for _ in range(m)]
        np.testing.assert_array_equal(PackedEncryptedVector.sum(ones).decrypt(sk),
                                      np.full(6, float(m)))
        minus = [PackedEncryptedVector.encrypt(pk, -np.ones(6), max_weight=m)
                 for _ in range(m)]
        np.testing.assert_array_equal(PackedEncryptedVector.sum(minus).decrypt(sk),
                                      np.full(6, -float(m)))

    def test_sum_beyond_headroom_rejected(self, pk):
        vs = [PackedEncryptedVector.encrypt(pk, [1.0], max_weight=3)
              for _ in range(4)]
        with pytest.raises(OverflowError):
            PackedEncryptedVector.sum(vs)

    def test_scale_beyond_headroom_rejected(self, pk):
        v = PackedEncryptedVector.encrypt(pk, [1.0], max_weight=3)
        with pytest.raises(OverflowError):
            v.scale(4)

    def test_scale_nonpositive_or_float_rejected(self, pk):
        v = PackedEncryptedVector.encrypt(pk, [1.0], max_weight=4)
        with pytest.raises(TypeError):
            v.scale(0.5)
        with pytest.raises(ValueError):
            v.scale(-1)
        with pytest.raises(ValueError):
            v.scale(0)

    def test_incompatible_schemes_rejected(self, pk):
        a = PackedEncryptedVector.encrypt(pk, [1.0, 0.5], max_weight=4)
        b = PackedEncryptedVector.encrypt(pk, [1.0, 0.5], max_weight=8)
        c = PackedEncryptedVector.encrypt(pk, [1.0], max_weight=4)
        with pytest.raises(ValueError):
            a + b
        with pytest.raises(ValueError):
            a + c

    def test_key_mismatch_rejected(self, pk):
        other_pk = generate_keypair(key_size=256, rng=random.Random(3)).public_key
        a = PackedEncryptedVector.encrypt(pk, [1.0], max_weight=4)
        b = PackedEncryptedVector.encrypt(other_pk, [1.0], max_weight=4)
        with pytest.raises(ValueError):
            a + b

    def test_add_notimplemented_for_other_types(self, pk):
        packed = PackedEncryptedVector.encrypt(pk, [1.0], max_weight=4)
        assert packed.__add__(3) is NotImplemented

    def test_empty_sum_rejected(self):
        with pytest.raises(ValueError):
            PackedEncryptedVector.sum([])

    def test_add_inplace_does_not_mutate_operand(self, pk, sk):
        a = PackedEncryptedVector.encrypt(pk, [1.0], max_weight=8)
        b = PackedEncryptedVector.encrypt(pk, [0.5], max_weight=8)
        b_cts = list(b.ciphertexts)
        a.copy().add_(b)
        assert b.ciphertexts == b_cts and b.weight == 1


class TestSizesAndSerialization:
    def test_fewer_wire_bytes_than_per_component(self, pk):
        values = np.full(56, 1.0 / 56)
        packed = PackedEncryptedVector.encrypt(pk, values, max_weight=100)
        per_component = EncryptedVector.encrypt(pk, values)
        assert packed.nbytes() < per_component.nbytes()
        assert packed.nbytes() == len(packed.ciphertexts) * pk.ciphertext_bytes()

    def test_serialization_roundtrip(self, pk, sk):
        values = np.array([-0.5, 0.0, 0.25, 1.0])
        packed = PackedEncryptedVector.encrypt(pk, values, max_weight=12)
        restored = PackedEncryptedVector.from_bytes(pk, packed.to_bytes())
        assert restored.weight == packed.weight
        assert restored.scheme.compatible_with(packed.scheme)
        np.testing.assert_array_equal(restored.decrypt(sk), values)

    def test_serialization_preserves_weight(self, pk, sk):
        a = PackedEncryptedVector.encrypt(pk, [0.5], max_weight=8)
        summed = a + PackedEncryptedVector.encrypt(pk, [0.25], max_weight=8)
        restored = PackedEncryptedVector.from_bytes(pk, summed.to_bytes())
        assert restored.weight == 2
        np.testing.assert_array_equal(restored.decrypt(sk), [0.75])

    def test_from_bytes_scale_mismatch_rejected(self, pk):
        packed = PackedEncryptedVector.encrypt(pk, [1.0], max_weight=4)
        with pytest.raises(ValueError):
            PackedEncryptedVector.from_bytes(pk, packed.to_bytes(), precision=6)

    def test_from_bytes_truncated_payload_rejected(self, pk):
        payload = PackedEncryptedVector.encrypt(pk, [1.0, 0.5], max_weight=4).to_bytes()
        with pytest.raises(ValueError):
            PackedEncryptedVector.from_bytes(pk, payload[:-3])
        with pytest.raises(ValueError):
            PackedEncryptedVector.from_bytes(pk, payload[:10])

    def test_from_bytes_foreign_key_width_rejected(self, pk):
        other_pk = generate_keypair(key_size=128, rng=random.Random(4)).public_key
        payload = PackedEncryptedVector.encrypt(pk, [1.0], max_weight=4).to_bytes()
        with pytest.raises(ValueError):
            PackedEncryptedVector.from_bytes(other_pk, payload)


class TestNoise:
    def test_pool_noise_decrypts_identically(self, pk, sk):
        pool = NoisePool(pk, rng=random.Random(5))
        values = np.array([0.125, -0.875, 1.0])
        with_pool = PackedEncryptedVector.encrypt(pk, values, max_weight=8,
                                                  noise=pool).decrypt(sk)
        without = PackedEncryptedVector.encrypt(pk, values, max_weight=8).decrypt(sk)
        np.testing.assert_array_equal(with_pool, without)

    def test_pre_drawn_sequence_accepted(self, pk, sk):
        pool = NoisePool(pk, rng=random.Random(6))
        scheme = PackingScheme(pk, 3, max_weight=8, max_abs_value=4.0)
        terms = pool.take_many(scheme.num_ciphertexts)
        out = PackedEncryptedVector.encrypt(pk, [1.0, 2.0, 3.0], scheme=scheme,
                                            noise=terms)
        np.testing.assert_array_equal(out.decrypt(sk), [1.0, 2.0, 3.0])

    def test_short_noise_sequence_rejected(self, pk):
        with pytest.raises(ValueError):
            PackedEncryptedVector.encrypt(pk, np.zeros(56), max_weight=100, noise=[])

    def test_value_above_bound_rejected(self, pk):
        with pytest.raises(OverflowError):
            PackedEncryptedVector.encrypt(pk, [2.5], max_weight=4, max_abs_value=1.0)


@settings(max_examples=scaled_max_examples(15), deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=-1, max_value=1, allow_nan=False), min_size=1, max_size=12
    ),
    scalar=st.integers(min_value=1, max_value=4),
)
def test_property_packed_equals_per_component(values, scalar):
    """encrypt → add → scale → decrypt is bit-identical in both pipelines."""
    kp = generate_keypair(key_size=256, rng=random.Random(13))
    pk, sk = kp.public_key, kp.private_key
    per_component = (
        (EncryptedVector.encrypt(pk, values) + EncryptedVector.encrypt(pk, values[::-1]))
        .scale(scalar).decrypt(sk)
    )
    packed = (
        (PackedEncryptedVector.encrypt(pk, values, max_weight=16)
         + PackedEncryptedVector.encrypt(pk, values[::-1], max_weight=16))
        .scale(scalar).decrypt(sk)
    )
    np.testing.assert_array_equal(per_component, packed)
