#!/usr/bin/env python
"""Secure registration walk-through: what the server can and cannot see.

This example follows one registration round (Figure 4 of the paper) message
by message:

1. the agent generates a Paillier key-pair and dispatches it to the clients;
2. every client fills its registry locally (Algorithm 1) and encrypts it;
3. the server aggregates *ciphertexts only* and synchronises the result;
4. the clients (who hold the secret key) decrypt the overall registry and
   compute their own participation probabilities.

Along the way it prints what the server observes — ciphertext blobs whose
contents it cannot read — versus what the clients learn, plus the measured
encryption / communication overhead of the round (§6.4).

Run it with::

    python examples/secure_registration.py

or, to ship BatchCrypt-style packed ciphertexts (many registry slots per
Paillier ciphertext, with the encryption noise precomputed offline)::

    python examples/secure_registration.py --packed
"""

from __future__ import annotations

import argparse
import random

import numpy as np

from repro.core import (
    DubheConfig,
    RegistryCodebook,
    SecureRegistrationRound,
    communication_overhead,
    measure_encryption_overhead,
    participation_probabilities,
)
from repro.crypto import KeyAgent
from repro.data import EMDTargetPartitioner, half_normal_class_proportions


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description="Secure registration walk-through")
    parser.add_argument("--packed", action="store_true",
                        help="ship packed ciphertexts with precomputed noise "
                             "and batched client encryption")
    args = parser.parse_args(argv)

    n_clients, k = 30, 6
    global_dist = half_normal_class_proportions(10, 10.0)
    partition = EMDTargetPartitioner(n_clients, 64, 1.5, seed=0).partition(global_dist)
    distributions = partition.client_distributions()

    config = DubheConfig(
        num_classes=10, reference_set=(1, 2, 10),
        thresholds={1: 0.7, 2: 0.1, 10: 0.0},
        participants_per_round=k, key_size=256,
    )

    # ------------------------------------------------------------ the protocol
    agent = KeyAgent(key_size=config.key_size, rng=random.Random(0))
    if args.packed:
        # noise is precomputed, so online encryption is GIL-bound Python —
        # sequential is the honest executor here (see repro.crypto.batch)
        protocol = SecureRegistrationRound(config, agent=agent, packed=True,
                                           precompute_noise=True)
    else:
        protocol = SecureRegistrationRound(config, agent=agent)
    overall, registrations, stats = protocol.run(distributions)

    print(f"Secure registration round ({'packed' if args.packed else 'per-component'} "
          f"ciphertexts)")
    print(f"  clients registered     : {len(registrations)}")
    print(f"  registry length        : {len(overall)} slots")
    print(f"  messages exchanged     : {stats.messages}")
    print(f"  plaintext transferred  : {stats.plaintext_bytes / 1024:.2f} KB")
    print(f"  ciphertext transferred : {stats.ciphertext_bytes / 1024:.2f} KB "
          f"({stats.expansion_factor:.0f}x expansion)")
    print(f"  encryption time        : {stats.encrypt_seconds:.3f} s "
          f"(all clients)")
    if stats.noise_precompute_seconds:
        print(f"  noise precompute       : {stats.noise_precompute_seconds:.3f} s "
              f"(offline, between rounds)")
    print(f"  decryption time        : {stats.decrypt_seconds:.3f} s")

    # -------------------------------------------------- what the clients learn
    codebook = RegistryCodebook(config)
    print("\nDecrypted overall registry (what every client learns):")
    for entry in codebook.describe(np.round(overall), max_entries=8):
        print(f"  category {entry['category']!s:<12} ({entry['block']} dominating): "
              f"{entry['count']:.0f} clients")

    probabilities = participation_probabilities(
        codebook, registrations, np.round(overall), config.participants_per_round
    )
    print("\nEach client's self-computed participation probability (first 10):")
    for client_id, p in enumerate(probabilities[:10]):
        category = registrations[client_id].category.classes
        print(f"  client {client_id:>2} (category {category!s:<10}): P = {p:.3f}")

    # -------------------------------------------- §6.4-style overhead summary
    print("\nPer-vector encryption overhead at this key size (registry of length 56):")
    report = measure_encryption_overhead(
        vector_length=56, key_size=config.key_size, rng_seed=0,
        packed_clients=n_clients if args.packed else None,
    )
    for key, value in report.as_row().items():
        print(f"  {key:<17}: {value}")

    comms = communication_overhead(
        n_clients=n_clients, participants_per_round=k,
        tentative_selections=5, reregistration=True, multitime_determination=True,
    )
    print("\nCommunication messages per round (N registry + H·K multi-time):")
    print(f"  baseline check-ins : {comms.baseline_messages}")
    print(f"  registration       : {comms.registration_messages}")
    print(f"  multi-time         : {comms.multitime_messages}")
    print(f"  total with Dubhe   : {comms.dubhe_total}")


if __name__ == "__main__":
    main()
