"""The three client-selection strategies compared in the paper.

* :class:`RandomSelector` — the baseline: ``K`` clients uniformly at random.
* :class:`GreedySelector` — the Astraea-style "optimal" bound: the server
  greedily builds the set that minimises the KL divergence between the
  selected population distribution and uniform.  It needs every client's
  plaintext label distribution, which is exactly the privacy leak Dubhe
  avoids; it is implemented here as the upper bound the paper compares
  against.
* :class:`DubheSelector` — the paper's contribution: clients register their
  dominating classes in a (homomorphically encryptable) registry, compute
  their own participation probability from the aggregated registry
  (eq. (6)), volunteer by Bernoulli draw, and the server only tops the pool
  up / trims it down to exactly ``K``.  Optional multi-time selection picks
  the most balanced of ``H`` tentative pools.

All selectors implement ``select(round_index) -> list[int]`` so they plug
into :class:`repro.federated.FederatedSimulation` interchangeably.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.distributions import kl_divergence, uniform_distribution
from .config import DubheConfig
from .multitime import MultiTimeResult, multi_time_selection
from .probability import bernoulli_participation, participation_probabilities
from .registry import RegistryCodebook

__all__ = ["ClientSelector", "RandomSelector", "GreedySelector", "DubheSelector"]


class ClientSelector:
    """Common interface and bookkeeping of all selection strategies."""

    name = "base"

    def __init__(self, client_distributions: np.ndarray, participants_per_round: int,
                 seed: Optional[int] = None):
        distributions = np.asarray(client_distributions, dtype=float)
        if distributions.ndim != 2:
            raise ValueError("client_distributions must be 2-D (clients x classes)")
        if distributions.shape[0] < 1:
            raise ValueError("need at least one client")
        if participants_per_round < 1:
            raise ValueError("participants_per_round must be positive")
        if participants_per_round > distributions.shape[0]:
            raise ValueError("cannot select more clients than exist")
        self.client_distributions = distributions
        self.n_clients, self.num_classes = distributions.shape
        self.participants_per_round = participants_per_round
        self.rng = np.random.default_rng(seed)
        self.uniform = uniform_distribution(self.num_classes)

    # -- helpers -------------------------------------------------------------------

    def population_of(self, selected: Sequence[int]) -> np.ndarray:
        """Population distribution ``p_o`` of a candidate participant set."""
        idx = np.asarray(list(selected), dtype=int)
        return self.client_distributions[idx].mean(axis=0)

    def bias_of(self, selected: Sequence[int]) -> float:
        """``||p_o − p_u||₁`` of a candidate participant set."""
        return float(np.abs(self.population_of(selected) - self.uniform).sum())

    def populations_of(self, candidates: Sequence[Sequence[int]]) -> np.ndarray:
        """Population distributions of several candidate sets at once.

        Equal-sized candidate sets (the common case: every tentative draw is
        topped up/trimmed to K) are scored with a single fancy-index and one
        mean over the member axis; ragged sets fall back to per-candidate
        calls.  Row ``h`` equals ``population_of(candidates[h])``.
        """
        sizes = {len(c) for c in candidates}
        if len(sizes) == 1:
            idx = np.asarray([tuple(c) for c in candidates], dtype=int)
            return self.client_distributions[idx].mean(axis=1)
        return np.stack([self.population_of(c) for c in candidates])

    def select(self, round_index: int) -> list[int]:
        raise NotImplementedError


class RandomSelector(ClientSelector):
    """Uniformly random selection of ``K`` clients (the FL default)."""

    name = "random"

    def select(self, round_index: int) -> list[int]:
        chosen = self.rng.choice(self.n_clients, size=self.participants_per_round, replace=False)
        return [int(c) for c in chosen]


class GreedySelector(ClientSelector):
    """Astraea-style greedy selection minimising KL(p_o || p_u).

    Requires global knowledge of every client's label distribution (not
    privacy-preserving) and costs ``O(N·C)`` work per pick — both drawbacks
    the paper quantifies.  Serves as the optimal reference ("opt"/"greedy"
    curves).

    Each pick maintains a running population sum (an O(C) update) and scores
    *all* N candidates with one vectorised ``argmin``: already-selected
    clients are masked to ``+inf`` instead of being re-gathered through a
    shrinking index array, so a step performs no per-candidate Python calls
    and no fancy-index copies of the distribution matrix.
    """

    name = "greedy"

    def select(self, round_index: int) -> list[int]:
        distributions = self.client_distributions
        log_uniform = np.log(self.uniform)
        first = int(self.rng.integers(self.n_clients))
        selected = [first]
        running = distributions[first].copy()  # running population sum, O(C) to update
        available = np.ones(self.n_clients, dtype=bool)
        available[first] = False
        while len(selected) < self.participants_per_round:
            # population distribution of every candidate joining, all N at once
            candidate_pop = running[None, :] + distributions
            candidate_pop /= candidate_pop.sum(axis=1, keepdims=True)
            np.clip(candidate_pop, 1e-12, None, out=candidate_pop)
            # KL(p_o || p_u) per candidate; taken clients cannot win the argmin
            kl = np.sum(candidate_pop * (np.log(candidate_pop) - log_uniform), axis=1)
            kl[~available] = np.inf
            best = int(np.argmin(kl))
            selected.append(best)
            running += distributions[best]
            available[best] = False
        return selected


class DubheSelector(ClientSelector):
    """The Dubhe proactive, privacy-preserving selection strategy."""

    name = "dubhe"

    def __init__(self, client_distributions: np.ndarray, config: DubheConfig,
                 seed: Optional[int] = None, rebalance_to_k: bool = True):
        super().__init__(client_distributions, config.participants_per_round, seed=seed)
        if config.num_classes != self.num_classes:
            raise ValueError("config num_classes does not match client distributions")
        if not config.has_all_thresholds():
            raise ValueError(
                "DubheConfig is missing thresholds; run repro.core.parameter_search first"
            )
        self.config = config
        self.rebalance_to_k = rebalance_to_k
        self.codebook = RegistryCodebook(config)
        self.registrations = self.codebook.register_many(self.client_distributions)
        self.overall_registry = self.codebook.aggregate(self.registrations)
        self.probabilities = participation_probabilities(
            self.codebook, self.registrations, self.overall_registry,
            config.participants_per_round,
        )
        self.last_result: Optional[MultiTimeResult] = None

    # -- registration refresh -----------------------------------------------------

    def refresh_registrations(self, client_distributions: Optional[np.ndarray] = None) -> None:
        """Re-run registration (the paper's periodic re-registration)."""
        if client_distributions is not None:
            distributions = np.asarray(client_distributions, dtype=float)
            if distributions.shape != self.client_distributions.shape:
                raise ValueError("new distributions must have the same shape")
            self.client_distributions = distributions
        self.registrations = self.codebook.register_many(self.client_distributions)
        self.overall_registry = self.codebook.aggregate(self.registrations)
        self.probabilities = participation_probabilities(
            self.codebook, self.registrations, self.overall_registry,
            self.config.participants_per_round,
        )

    # -- one tentative draw ----------------------------------------------------------

    def _tentative_draw(self, _h: int) -> list[int]:
        """One proactive participation draw, topped up / trimmed to exactly K."""
        volunteers = bernoulli_participation(self.probabilities, rng=self.rng)
        pool = list(int(v) for v in volunteers)
        k = self.participants_per_round
        if not self.rebalance_to_k:
            return pool
        if len(pool) > k:
            keep = self.rng.choice(len(pool), size=k, replace=False)
            pool = [pool[i] for i in keep]
        elif len(pool) < k:
            outside = np.setdiff1d(np.arange(self.n_clients), np.asarray(pool, dtype=int))
            extra = self.rng.choice(outside, size=k - len(pool), replace=False)
            pool.extend(int(e) for e in extra)
        return pool

    # -- public API --------------------------------------------------------------------

    def select(self, round_index: int) -> list[int]:
        result = multi_time_selection(
            draw=self._tentative_draw,
            population_of=self.population_of,
            uniform=self.uniform,
            tries=self.config.tentative_selections,
            population_of_many=self.populations_of,
        )
        self.last_result = result
        return list(result.best.candidate)

    @property
    def last_bias(self) -> float:
        """``EMD* = ||p_o,h* − p_u||₁`` of the most recent selection."""
        if self.last_result is None:
            raise RuntimeError("no selection has been performed yet")
        return self.last_result.best_score
