"""Typed messages of the Dubhe round protocol.

FedLab separates the *process* (a socket loop) from the *role* (server or
client logic) with an explicit message layer; this module is that layer for
the Dubhe protocol.  One round is the following exchange::

    client                         server
      | -- Register -------------->  |   join the federation
      | <-- RegisterAck -----------  |   acknowledged, cohort position known
      | -- PackedCiphertextUpload -> |   encrypted registry / p_l vectors
      | <-- ProbabilityBroadcast --  |   q_k over the registered cohort
      | <-- SelectionNotice -------  |   you are selected: state + recipe
      | -- ModelDelta ------------>  |   locally trained parameters
      | <-- RoundResult -----------  |   round closed (possibly partial)
      | <-- Shutdown --------------  |   federation is over

plus the liveness pair that runs alongside the round exchange::

      | <-- Heartbeat -------------  |   are you alive?
      | -- HeartbeatAck ---------->  |   yes (connection is not half-open)

:class:`Register` carries a **session token**: empty on a first join, the
previously issued token on a reconnect, letting the server resume the old
session (same cohort position, same round state) instead of treating the
peer as a stranger.  :class:`ModelDelta` echoes the token so retransmits
after a reconnect are deduplicated by ``(round, client, token)`` and never
double-aggregate.

Every message is a frozen dataclass with a one-byte :attr:`TYPE` code, a
``to_payload`` serialiser and a ``from_payload`` parser built on the
primitive codecs of :mod:`repro.transport.wire`.  :func:`encode_message`
wraps a message into one versioned frame; :func:`decode_message` is its
exact inverse and raises the structured :class:`~repro.transport.wire.WireError`
family on damage, truncation or a foreign protocol version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Type

import numpy as np

from ..crypto.packing import PackedEncryptedVector
from ..federated.client import LocalTrainingConfig
from .wire import (
    CorruptFrameError,
    WireReader,
    WireWriter,
    decode_frame,
    encode_frame,
    packed_from_wire,
    packed_to_wire,
    state_from_wire,
    state_to_wire,
)

__all__ = [
    "ErrorNotice",
    "Heartbeat",
    "HeartbeatAck",
    "MESSAGE_TYPES",
    "ModelDelta",
    "PackedCiphertextUpload",
    "ProbabilityBroadcast",
    "Register",
    "RegisterAck",
    "RoundResult",
    "SelectionNotice",
    "Shutdown",
    "decode_message",
    "encode_message",
]


@dataclass(frozen=True)
class Register:
    """Client → server: join the federation.

    ``token`` is empty on a first join; on a reconnect the client echoes
    the token from its last :class:`RegisterAck`, asking the server to
    resume the existing session (cohort position, in-flight round) instead
    of registering a stranger.

    Example
    -------
    >>> msg = Register(client_id=3, num_classes=10, num_samples=120)
    >>> decode_message(encode_message(msg))[0] == msg
    True
    """

    TYPE = 1

    client_id: int
    num_classes: int
    num_samples: int
    token: str = ""

    def to_payload(self) -> bytes:
        """Serialise to a frame payload.

        Example
        -------
        >>> Register.from_payload(Register(1, 10, 5).to_payload()).client_id
        1
        """
        return (WireWriter().u32(self.client_id).u32(self.num_classes)
                .u32(self.num_samples).str(self.token).getvalue())

    @classmethod
    def from_payload(cls, payload: bytes) -> "Register":
        """Parse from a frame payload.

        Example
        -------
        >>> Register.from_payload(Register(2, 10, 64).to_payload()).num_samples
        64
        """
        reader = WireReader(payload)
        return cls(reader.u32(), reader.u32(), reader.u32(), reader.str())


@dataclass(frozen=True)
class RegisterAck:
    """Server → client: registration accepted, cohort position assigned.

    ``token`` is the session token the client must echo in subsequent
    :class:`Register` (reconnect) and :class:`ModelDelta` messages;
    ``resumed`` tells the client whether an existing session was resumed
    (its in-flight round, if any, is being replayed) or a fresh one opened.

    Example
    -------
    >>> ack = RegisterAck(client_id=3, position=0, cohort_size=4)
    >>> decode_message(encode_message(ack))[0] == ack
    True
    """

    TYPE = 2

    client_id: int
    position: int
    cohort_size: int
    token: str = ""
    resumed: bool = False

    def to_payload(self) -> bytes:
        """Serialise to a frame payload.

        Example
        -------
        >>> RegisterAck.from_payload(RegisterAck(1, 0, 4).to_payload()).position
        0
        """
        return (WireWriter().u32(self.client_id).u32(self.position)
                .u32(self.cohort_size).str(self.token).bool(self.resumed)
                .getvalue())

    @classmethod
    def from_payload(cls, payload: bytes) -> "RegisterAck":
        """Parse from a frame payload.

        Example
        -------
        >>> RegisterAck.from_payload(RegisterAck(1, 2, 4).to_payload()).cohort_size
        4
        """
        reader = WireReader(payload)
        return cls(reader.u32(), reader.u32(), reader.u32(), reader.str(),
                   reader.bool())


@dataclass(frozen=True)
class PackedCiphertextUpload:
    """Client → server: a packed encrypted vector (registry or ``p_l``).

    The *tag* names which protocol artefact the vector is ("registry",
    "label_distribution", ...), so one message type covers every encrypted
    upload of the Dubhe handshake.

    Example
    -------
    >>> from repro.crypto import generate_keypair
    >>> from repro.crypto.packing import PackedEncryptedVector
    >>> public, private = generate_keypair(key_size=256)
    >>> vec = PackedEncryptedVector.encrypt(public, [0.5, 0.25])
    >>> msg = PackedCiphertextUpload(client_id=1, tag="registry", vector=vec)
    >>> back = decode_message(encode_message(msg))[0]
    >>> back.vector.decrypt(private).tolist()
    [0.5, 0.25]
    """

    TYPE = 3

    client_id: int
    tag: str
    vector: PackedEncryptedVector

    def to_payload(self) -> bytes:
        """Serialise to a frame payload.

        Example
        -------
        >>> from repro.crypto import generate_keypair
        >>> from repro.crypto.packing import PackedEncryptedVector
        >>> public, _ = generate_keypair(key_size=256)
        >>> vec = PackedEncryptedVector.encrypt(public, [1.0])
        >>> msg = PackedCiphertextUpload(0, "p_l", vec)
        >>> PackedCiphertextUpload.from_payload(msg.to_payload()).tag
        'p_l'
        """
        writer = WireWriter().u32(self.client_id).str(self.tag)
        packed_to_wire(self.vector, writer)
        return writer.getvalue()

    @classmethod
    def from_payload(cls, payload: bytes) -> "PackedCiphertextUpload":
        """Parse from a frame payload.

        Example
        -------
        >>> from repro.crypto import generate_keypair
        >>> from repro.crypto.packing import PackedEncryptedVector
        >>> public, _ = generate_keypair(key_size=256)
        >>> vec = PackedEncryptedVector.encrypt(public, [0.0, 1.0])
        >>> msg = PackedCiphertextUpload(7, "registry", vec)
        >>> len(PackedCiphertextUpload.from_payload(msg.to_payload()).vector)
        2
        """
        reader = WireReader(payload)
        client_id = reader.u32()
        tag = reader.str()
        return cls(client_id, tag, packed_from_wire(reader))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedCiphertextUpload):
            return NotImplemented
        return (self.client_id == other.client_id and self.tag == other.tag
                and self.vector.ciphertexts == other.vector.ciphertexts
                and self.vector.weight == other.vector.weight)


@dataclass(frozen=True)
class ProbabilityBroadcast:
    """Server → clients: the selection probabilities ``q_k`` for this round.

    Example
    -------
    >>> msg = ProbabilityBroadcast(round_index=2, probabilities=(0.5, 0.5))
    >>> decode_message(encode_message(msg))[0].probabilities
    (0.5, 0.5)
    """

    TYPE = 4

    round_index: int
    probabilities: "tuple[float, ...]"

    def to_payload(self) -> bytes:
        """Serialise to a frame payload.

        Example
        -------
        >>> msg = ProbabilityBroadcast(0, (1.0,))
        >>> ProbabilityBroadcast.from_payload(msg.to_payload()).round_index
        0
        """
        writer = WireWriter().u32(self.round_index).u32(len(self.probabilities))
        for p in self.probabilities:
            writer.f64(float(p))
        return writer.getvalue()

    @classmethod
    def from_payload(cls, payload: bytes) -> "ProbabilityBroadcast":
        """Parse from a frame payload.

        Example
        -------
        >>> msg = ProbabilityBroadcast(1, (0.25, 0.75))
        >>> ProbabilityBroadcast.from_payload(msg.to_payload()).probabilities
        (0.25, 0.75)
        """
        reader = WireReader(payload)
        round_index = reader.u32()
        count = reader.u32()
        return cls(round_index, tuple(reader.f64() for _ in range(count)))


@dataclass(frozen=True)
class SelectionNotice:
    """Server → one selected client: train on this state with this recipe.

    Carries the global model state, the local-training hyper-parameters and
    the round deadline — everything the client executor needs to produce a
    :class:`ModelDelta`.

    Example
    -------
    >>> import numpy as np
    >>> notice = SelectionNotice(round_index=1, client_id=3,
    ...                          config=LocalTrainingConfig(),
    ...                          state={"w": np.zeros(2)}, deadline=30.0)
    >>> back = decode_message(encode_message(notice))[0]
    >>> back.client_id, back.config.batch_size
    (3, 8)
    """

    TYPE = 5

    round_index: int
    client_id: int
    config: LocalTrainingConfig
    state: "Mapping[str, np.ndarray]"
    deadline: Optional[float] = None

    def to_payload(self) -> bytes:
        """Serialise to a frame payload.

        Example
        -------
        >>> notice = SelectionNotice(0, 1, LocalTrainingConfig(), {})
        >>> SelectionNotice.from_payload(notice.to_payload()).round_index
        0
        """
        writer = (WireWriter().u32(self.round_index).u32(self.client_id)
                  .opt_f64(self.deadline)
                  .u32(self.config.batch_size).u32(self.config.local_epochs)
                  .f64(self.config.learning_rate).str(self.config.optimizer))
        max_batches = self.config.max_batches_per_epoch
        writer.u8(1 if max_batches is not None else 0)
        if max_batches is not None:
            writer.u32(max_batches)
        state_to_wire(self.state, writer)
        return writer.getvalue()

    @classmethod
    def from_payload(cls, payload: bytes) -> "SelectionNotice":
        """Parse from a frame payload.

        Example
        -------
        >>> notice = SelectionNotice(2, 0, LocalTrainingConfig(batch_size=4), {},
        ...                          deadline=5.0)
        >>> SelectionNotice.from_payload(notice.to_payload()).deadline
        5.0
        """
        reader = WireReader(payload)
        round_index = reader.u32()
        client_id = reader.u32()
        deadline = reader.opt_f64()
        batch_size = reader.u32()
        local_epochs = reader.u32()
        learning_rate = reader.f64()
        optimizer = reader.str()
        max_batches = reader.u32() if reader.u8() else None
        try:
            config = LocalTrainingConfig(
                batch_size=batch_size, local_epochs=local_epochs,
                learning_rate=learning_rate, optimizer=optimizer,
                max_batches_per_epoch=max_batches,
            )
        except ValueError as exc:
            raise CorruptFrameError(f"invalid training recipe on the wire: {exc}")
        return cls(round_index, client_id, config, state_from_wire(reader),
                   deadline=deadline)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SelectionNotice):
            return NotImplemented
        return (self.round_index == other.round_index
                and self.client_id == other.client_id
                and self.config == other.config
                and self.deadline == other.deadline
                and _states_equal(self.state, other.state))


@dataclass(frozen=True)
class ModelDelta:
    """Client → server: locally trained parameters for one round.

    ``token`` echoes the session token from :class:`RegisterAck` so the
    server can deduplicate retransmits by ``(round, client, token)``: a
    client that reconnects mid-round and resends its delta is aggregated
    exactly once.

    Example
    -------
    >>> import numpy as np
    >>> delta = ModelDelta(round_index=0, client_id=1,
    ...                    state={"w": np.ones(3, dtype=np.float32)})
    >>> decode_message(encode_message(delta))[0].state["w"].dtype.name
    'float32'
    """

    TYPE = 6

    round_index: int
    client_id: int
    state: "Mapping[str, np.ndarray]"
    token: str = ""

    def to_payload(self) -> bytes:
        """Serialise to a frame payload.

        Example
        -------
        >>> ModelDelta.from_payload(ModelDelta(1, 2, {}).to_payload()).client_id
        2
        """
        writer = (WireWriter().u32(self.round_index).u32(self.client_id)
                  .str(self.token))
        state_to_wire(self.state, writer)
        return writer.getvalue()

    @classmethod
    def from_payload(cls, payload: bytes) -> "ModelDelta":
        """Parse from a frame payload.

        Example
        -------
        >>> ModelDelta.from_payload(ModelDelta(3, 0, {}).to_payload()).round_index
        3
        """
        reader = WireReader(payload)
        round_index = reader.u32()
        client_id = reader.u32()
        token = reader.str()
        return cls(round_index, client_id, state_from_wire(reader), token)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ModelDelta):
            return NotImplemented
        return (self.round_index == other.round_index
                and self.client_id == other.client_id
                and _states_equal(self.state, other.state))


@dataclass(frozen=True)
class RoundResult:
    """Server → clients: the round closed (fully or partially).

    ``failures`` maps client id → failure cause (one of
    :data:`repro.scenarios.engine.FAILURE_CAUSES`); a non-empty map means the
    round completed partially under the server's ``min_participation`` skip
    policy.

    Example
    -------
    >>> result = RoundResult(round_index=1, skipped=False, accuracy=0.5,
    ...                      failures={3: "straggler"})
    >>> decode_message(encode_message(result))[0].failures
    {3: 'straggler'}
    """

    TYPE = 7

    round_index: int
    skipped: bool
    accuracy: Optional[float] = None
    failures: "Dict[int, str]" = field(default_factory=dict)

    def to_payload(self) -> bytes:
        """Serialise to a frame payload.

        Example
        -------
        >>> RoundResult.from_payload(RoundResult(0, True).to_payload()).skipped
        True
        """
        writer = (WireWriter().u32(self.round_index).bool(self.skipped)
                  .opt_f64(self.accuracy).u32(len(self.failures)))
        for client_id in sorted(self.failures):
            writer.u32(client_id).str(self.failures[client_id])
        return writer.getvalue()

    @classmethod
    def from_payload(cls, payload: bytes) -> "RoundResult":
        """Parse from a frame payload.

        Example
        -------
        >>> RoundResult.from_payload(RoundResult(2, False, 0.75).to_payload()).accuracy
        0.75
        """
        reader = WireReader(payload)
        round_index = reader.u32()
        skipped = reader.bool()
        accuracy = reader.opt_f64()
        count = reader.u32()
        failures = {}
        for _ in range(count):
            client_id = reader.u32()
            failures[client_id] = reader.str()
        return cls(round_index, skipped, accuracy, failures)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoundResult):
            return NotImplemented
        return (self.round_index == other.round_index
                and self.skipped == other.skipped
                and self.accuracy == other.accuracy
                and self.failures == other.failures)


@dataclass(frozen=True)
class Shutdown:
    """Server → clients: the federation is over, close the connection.

    Example
    -------
    >>> decode_message(encode_message(Shutdown("done")))[0].reason
    'done'
    """

    TYPE = 8

    reason: str = "complete"

    def to_payload(self) -> bytes:
        """Serialise to a frame payload.

        Example
        -------
        >>> Shutdown.from_payload(Shutdown().to_payload()).reason
        'complete'
        """
        return WireWriter().str(self.reason).getvalue()

    @classmethod
    def from_payload(cls, payload: bytes) -> "Shutdown":
        """Parse from a frame payload.

        Example
        -------
        >>> Shutdown.from_payload(Shutdown("closing").to_payload()).reason
        'closing'
        """
        return cls(WireReader(payload).str())


@dataclass(frozen=True)
class ErrorNotice:
    """Either direction: a structured protocol error (kept on the wire so a
    peer can distinguish "you were rejected" from a dead socket).

    Example
    -------
    >>> decode_message(encode_message(ErrorNotice("bad tag")))[0].detail
    'bad tag'
    """

    TYPE = 9

    detail: str

    def to_payload(self) -> bytes:
        """Serialise to a frame payload.

        Example
        -------
        >>> ErrorNotice.from_payload(ErrorNotice("x").to_payload()).detail
        'x'
        """
        return WireWriter().str(self.detail).getvalue()

    @classmethod
    def from_payload(cls, payload: bytes) -> "ErrorNotice":
        """Parse from a frame payload.

        Example
        -------
        >>> ErrorNotice.from_payload(ErrorNotice("nope").to_payload()).detail
        'nope'
        """
        return cls(WireReader(payload).str())


@dataclass(frozen=True)
class Heartbeat:
    """Server → client: liveness probe (detects half-open connections).

    ``seq`` is a per-connection sequence number; the client echoes it back
    in a :class:`HeartbeatAck`.  A connection that stays silent for
    ``heartbeat_interval * heartbeat_limit`` seconds is declared dead and
    torn down well before the round deadline.

    Example
    -------
    >>> decode_message(encode_message(Heartbeat(seq=4)))[0].seq
    4
    """

    TYPE = 10

    seq: int

    def to_payload(self) -> bytes:
        """Serialise to a frame payload.

        Example
        -------
        >>> Heartbeat.from_payload(Heartbeat(7).to_payload()).seq
        7
        """
        return WireWriter().u32(self.seq).getvalue()

    @classmethod
    def from_payload(cls, payload: bytes) -> "Heartbeat":
        """Parse from a frame payload.

        Example
        -------
        >>> Heartbeat.from_payload(Heartbeat(0).to_payload()).seq
        0
        """
        return cls(WireReader(payload).u32())


@dataclass(frozen=True)
class HeartbeatAck:
    """Client → server: liveness probe answered, connection is healthy.

    Example
    -------
    >>> decode_message(encode_message(HeartbeatAck(seq=4)))[0].seq
    4
    """

    TYPE = 11

    seq: int

    def to_payload(self) -> bytes:
        """Serialise to a frame payload.

        Example
        -------
        >>> HeartbeatAck.from_payload(HeartbeatAck(9).to_payload()).seq
        9
        """
        return WireWriter().u32(self.seq).getvalue()

    @classmethod
    def from_payload(cls, payload: bytes) -> "HeartbeatAck":
        """Parse from a frame payload.

        Example
        -------
        >>> HeartbeatAck.from_payload(HeartbeatAck(1).to_payload()).seq
        1
        """
        return cls(WireReader(payload).u32())


#: One-byte type code → message class, the registry the decoder dispatches on.
MESSAGE_TYPES: "Dict[int, Type]" = {
    cls.TYPE: cls
    for cls in (Register, RegisterAck, PackedCiphertextUpload,
                ProbabilityBroadcast, SelectionNotice, ModelDelta,
                RoundResult, Shutdown, ErrorNotice, Heartbeat, HeartbeatAck)
}


def _states_equal(a: "Mapping[str, np.ndarray]",
                  b: "Mapping[str, np.ndarray]") -> bool:
    if set(a) != set(b):
        return False
    return all(
        a[k].dtype == b[k].dtype and np.array_equal(a[k], b[k]) for k in a
    )


def encode_message(message) -> bytes:
    """One complete wire frame around *message*.

    Example
    -------
    >>> frame = encode_message(Shutdown())
    >>> isinstance(decode_message(frame)[0], Shutdown)
    True
    """
    return encode_frame(message.TYPE, message.to_payload())


def decode_message(buffer: bytes):
    """Decode one message from the head of *buffer*.

    Returns ``(message, bytes_consumed)``.  Raises the structured
    :class:`~repro.transport.wire.WireError` subclasses on truncation,
    damage, an unknown type code or a foreign protocol version.

    Example
    -------
    >>> message, used = decode_message(encode_message(Register(1, 10, 8)))
    >>> message.num_classes
    10
    """
    msg_type, payload, consumed = decode_frame(buffer)
    try:
        cls = MESSAGE_TYPES[msg_type]
    except KeyError:
        raise CorruptFrameError(f"unknown message type code {msg_type}")
    return cls.from_payload(payload), consumed
