#!/usr/bin/env python
"""CIFAR-like federated training under heavy global skew (Figure 6 scenario).

Reproduces — at reduced scale — the paper's headline training comparison:
on a CIFAR-like dataset with global imbalance ratio ρ = 10 and client
discrepancy EMD_avg = 1.5, train the same CNN with random, greedy and Dubhe
client selection, and watch random selection stall at a biased optimum while
Dubhe tracks the greedy upper bound.

The default configuration finishes in a few minutes on CPU; pass
``--rounds``/``--clients`` to scale it up towards the paper's setting
(N = 1000, K = 20, 1000 rounds).

Run it with::

    python examples/skewed_cifar_training.py
    python examples/skewed_cifar_training.py --rounds 60 --clients 300
"""

from __future__ import annotations

import argparse

from repro import (
    DubheConfig,
    DubheSelector,
    FederatedConfig,
    GreedySelector,
    LocalTrainingConfig,
    RandomSelector,
    Session,
    make_uniform_test_set,
    quick_federation,
    search_thresholds,
)
from repro.nn.models import CifarCNN


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=100)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--rounds", type=int, default=20)
    parser.add_argument("--rho", type=float, default=10.0)
    parser.add_argument("--emd", type=float, default=1.5)
    args = parser.parse_args()

    partition, generator = quick_federation(
        n_clients=args.clients, samples_per_client=32, rho=args.rho,
        emd_avg=args.emd, dataset="cifar", seed=0,
    )
    distributions = partition.client_distributions()
    test_set = make_uniform_test_set(generator, samples_per_class=20, seed=1)
    print(f"CIFAR-like federation: N={args.clients}, K={args.k}, "
          f"ρ={partition.achieved_rho():.1f}, EMD_avg={partition.achieved_emd_avg():.2f}")

    config = DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                         participants_per_round=args.k, tentative_selections=5, seed=0)
    settled = search_thresholds(distributions, config, sigma_grid=(0.1, 0.3, 0.5, 0.7), seed=0)

    def make_selector(name: str):
        if name == "random":
            return RandomSelector(distributions, args.k, seed=2)
        if name == "greedy":
            return GreedySelector(distributions, args.k, seed=2)
        return DubheSelector(distributions, settled.config, seed=2)

    print(f"\nTraining {args.rounds} rounds with each selection method")
    results = {}
    for name in ("random", "dubhe", "greedy"):
        sim = Session(
            FederatedConfig(
                rounds=args.rounds,
                eval_every=max(1, args.rounds // 20),
                local=LocalTrainingConfig(batch_size=8, local_epochs=1, learning_rate=2e-3),
                seed=2,
            ),
        ).with_federation(
            partition=partition,
            generator=generator,
            model_factory=lambda: CifarCNN(3, 8, 10, channels=(8, 16, 16), hidden=32, seed=5),
            selector=make_selector(name),
            test_set=test_set,
        ).build()
        history = sim.run(progress=lambda r: print(
            f"  [{name:>6}] round {r.round_index:>3}  "
            f"bias={r.population_bias:.3f}"
            + (f"  acc={r.test_accuracy:.3f}" if r.test_accuracy is not None else "")
        ) if r.round_index % 5 == 0 else None)
        results[name] = history
        print(f"  {name:<7}: final acc={history.final_accuracy():.3f}  "
              f"tail acc={history.tail_average_accuracy(5):.3f}  "
              f"mean bias={history.mean_population_bias():.3f}")

    print("\nSummary (higher accuracy / lower bias is better)")
    for name, history in results.items():
        print(f"  {name:<7}: tail accuracy={history.tail_average_accuracy(5):.3f}  "
              f"mean ||p_o − p_u||₁={history.mean_population_bias():.3f}")


if __name__ == "__main__":
    main()
