"""Integrity checks for the mkdocs documentation site.

The strict site build (``mkdocs build --strict``) runs in CI where mkdocs +
mkdocstrings are installed; these tests catch the same classes of breakage
— dangling nav entries, unresolvable ``::: identifier`` directives, and a
paper-mapping table that drifted from the benchmark modules — with only the
repository's own toolchain, so a broken docs change fails tier-1 locally
instead of surfacing one CI job later.
"""

import importlib
import re
from pathlib import Path

import pytest
import yaml

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = REPO_ROOT / "docs"
MKDOCS_YML = REPO_ROOT / "mkdocs.yml"


def _load_mkdocs_config() -> dict:
    # mkdocs.yml may use python-specific tags in some setups; ours is plain
    return yaml.safe_load(MKDOCS_YML.read_text())


def _nav_paths(nav) -> "list[str]":
    paths = []
    for entry in nav:
        if isinstance(entry, str):
            paths.append(entry)
        elif isinstance(entry, dict):
            for value in entry.values():
                if isinstance(value, str):
                    paths.append(value)
                else:
                    paths.extend(_nav_paths(value))
    return paths


class TestMkdocsConfig:
    def test_config_parses_and_uses_strict_friendly_layout(self):
        config = _load_mkdocs_config()
        assert config["docs_dir"] == "docs"
        plugin_names = [p if isinstance(p, str) else next(iter(p))
                        for p in config["plugins"]]
        assert "mkdocstrings" in plugin_names

    def test_every_nav_entry_exists(self):
        config = _load_mkdocs_config()
        for path in _nav_paths(config["nav"]):
            assert (DOCS / path).is_file(), f"nav references missing {path}"

    def test_every_docs_page_is_reachable_from_nav(self):
        config = _load_mkdocs_config()
        nav = set(_nav_paths(config["nav"]))
        on_disk = {str(p.relative_to(DOCS)) for p in DOCS.rglob("*.md")}
        assert on_disk == nav, (
            f"pages not in nav: {sorted(on_disk - nav)}; "
            f"nav without pages: {sorted(nav - on_disk)}"
        )


class TestApiDirectives:
    def test_every_mkdocstrings_identifier_imports(self):
        identifiers = []
        for page in DOCS.rglob("*.md"):
            identifiers.extend(
                re.findall(r"^::: (\S+)$", page.read_text(), re.M))
        assert identifiers, "no mkdocstrings directives found under docs/"
        for identifier in identifiers:
            importlib.import_module(identifier)

    def test_public_federated_modules_are_documented(self):
        documented = (DOCS / "api" / "federated.md").read_text()
        for module in ("client", "server", "executor", "scheduler",
                       "workspace", "aggregation", "simulation", "history"):
            assert f"::: repro.federated.{module}" in documented, module


class TestPaperMapping:
    def test_every_experiment_module_is_mapped(self):
        mapping = (DOCS / "paper_mapping.md").read_text()
        experiment_modules = sorted(
            p.name for p in (REPO_ROOT / "benchmarks").glob("test_*.py"))
        assert experiment_modules, "no benchmark experiment modules found"
        missing = [m for m in experiment_modules
                   if f"benchmarks/{m.removesuffix('.py')}" not in mapping]
        assert not missing, f"paper_mapping.md misses {missing}"

    def test_mapped_modules_exist(self):
        mapping = (DOCS / "paper_mapping.md").read_text()
        for ref in re.findall(r"`benchmarks/(test_\w+)\.py`", mapping):
            assert (REPO_ROOT / "benchmarks" / f"{ref}.py").is_file(), ref

    @pytest.mark.parametrize("artefact", [
        "Figure 2", "Figure 6", "Figure 7", "Figure 8", "Figure 9",
        "Figure 10", "Table 1", "Table 2", "Eq. (2)", "§6.4",
    ])
    def test_key_paper_artefacts_are_covered(self, artefact):
        assert artefact in (DOCS / "paper_mapping.md").read_text(), artefact
