"""Tests for half-normal global skew generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples

from repro.data.distributions import imbalance_ratio
from repro.data.skew import (
    apply_global_skew,
    half_normal_class_proportions,
    skewed_class_counts,
)


class TestHalfNormalProportions:
    @pytest.mark.parametrize("rho", [1.0, 2.0, 5.0, 10.0, 13.64])
    def test_ratio_is_exact(self, rho):
        p = half_normal_class_proportions(10, rho)
        assert p.max() / p.min() == pytest.approx(rho, rel=1e-9)

    def test_sums_to_one(self):
        p = half_normal_class_proportions(10, 5.0)
        assert p.sum() == pytest.approx(1.0)

    def test_rho_one_is_uniform(self):
        np.testing.assert_allclose(half_normal_class_proportions(4, 1.0), [0.25] * 4)

    def test_monotone_decreasing_without_shuffle(self):
        p = half_normal_class_proportions(10, 10.0)
        assert np.all(np.diff(p) <= 1e-12)

    def test_shuffle_permutes(self):
        rng = np.random.default_rng(0)
        p = half_normal_class_proportions(10, 10.0, rng=rng, shuffle=True)
        assert not np.all(np.diff(p) <= 0)
        assert p.sum() == pytest.approx(1.0)

    def test_single_class(self):
        np.testing.assert_allclose(half_normal_class_proportions(1, 5.0), [1.0])

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            half_normal_class_proportions(10, 0.5)

    def test_invalid_num_classes(self):
        with pytest.raises(ValueError):
            half_normal_class_proportions(0, 2.0)


class TestSkewedClassCounts:
    def test_total_is_exact(self):
        counts = skewed_class_counts(10_000, 10, 10.0)
        assert counts.sum() == 10_000

    def test_every_class_has_samples(self):
        counts = skewed_class_counts(500, 10, 50.0)
        assert np.all(counts >= 1)

    @pytest.mark.parametrize("rho", [2.0, 5.0, 10.0])
    def test_achieved_rho_close_to_target(self, rho):
        counts = skewed_class_counts(50_000, 10, rho)
        assert imbalance_ratio(counts) == pytest.approx(rho, rel=0.05)

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValueError):
            skewed_class_counts(5, 10, 2.0)


class TestApplyGlobalSkew:
    def test_skews_a_balanced_label_array(self):
        rng = np.random.default_rng(1)
        labels = np.repeat(np.arange(10), 1000)
        keep = apply_global_skew(labels, 10, 10.0, rng=rng)
        kept_counts = np.bincount(labels[keep], minlength=10)
        assert imbalance_ratio(kept_counts) == pytest.approx(10.0, rel=0.15)

    def test_indices_are_valid(self):
        labels = np.repeat(np.arange(5), 100)
        keep = apply_global_skew(labels, 5, 3.0, rng=np.random.default_rng(0))
        assert keep.min() >= 0 and keep.max() < len(labels)
        assert len(np.unique(keep)) == len(keep)


@settings(max_examples=scaled_max_examples(50), deadline=None)
@given(
    num_classes=st.integers(min_value=2, max_value=60),
    rho=st.floats(min_value=1.0, max_value=100.0),
)
def test_property_half_normal_is_valid_distribution(num_classes, rho):
    p = half_normal_class_proportions(num_classes, rho)
    assert p.sum() == pytest.approx(1.0)
    assert np.all(p > 0)
    assert p.max() / p.min() == pytest.approx(rho, rel=1e-6)
