"""Round-persistent state of the vectorized (cohort) execution back-end.

PR 2 made a single vectorized round fast; this module makes *multi-round*
simulations fast by keeping everything a round allocates alive between
rounds.  A :class:`CohortWorkspace` owns

* the :class:`~repro.nn.batched.BatchedModel` with its flat ``(K·P)``
  value/grad pools,
* the fused cohort optimiser (Adam moments / SGD velocity, pool-sized), and
* the dense ``(K, N_vc, …)`` data buffers
  (:class:`~repro.data.cohort.CohortBuffer`),

and :class:`~repro.federated.LocalUpdateExecutor` reuses one workspace for
as long as consecutive rounds are *shape-compatible* (same cohort size, same
model architecture, same dtype).  Each round the executor rebinds the fresh
template model into the existing pools (:meth:`CohortWorkspace.adopt`),
resets — never reallocates — the optimiser state, and restacks only the data
slots whose selected client changed.  Every reuse path preserves the
sequential contract exactly: a rebound round is arithmetically
indistinguishable from a freshly built one, because sequential clients also
start every round from a factory-fresh model and optimiser.

Numerical safety valves: a structurally different template, a changed cohort
size, or an unregistered custom layer silently rebuilds the workspace
(counted in ``LocalUpdateExecutor.workspace_builds``); a ragged cohort
raises through to the executor's usual sequential fallback while leaving the
workspace intact for the next dense round.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional, Sequence

import numpy as np

from ..data.cohort import CohortBuffer
from ..nn.batched import BatchedAdam, BatchedModel, BatchedSGD, batched_cross_entropy
from ..nn.module import Module
from .client import FederatedClient, LocalTrainingConfig

__all__ = ["CohortWorkspace", "shared_pool", "train_cohort"]


def shared_pool(shape: Sequence[int], dtype: "str | np.dtype",
                ctx: "Optional[multiprocessing.context.BaseContext]" = None,
                ) -> np.ndarray:
    """Allocate a dense array on process-shared (fork-inheritable) memory.

    The multi-cohort scheduler keeps three kinds of state in pools allocated
    here: the round's flattened global parameters (parent writes, every
    worker reads), each shard's stacked ``(K_s, N_vc, …)`` cohort data
    (parent restacks changed slots, its worker trains from the same pages)
    and each shard's flat result pool (worker writes its trained parameter
    stack, parent merges zero-copy).  Worker processes forked *after* the
    allocation inherit the mapping, so per-round communication is a couple of
    array writes instead of pickling models and datasets through a pipe.

    Without *ctx* the pool comes from the default multiprocessing context;
    the returned array owns a reference to the underlying shared block, so it
    lives exactly as long as the array (and any forked views of it) does.

    Example
    -------
    >>> pool = shared_pool((2, 3), "float64")
    >>> pool[:] = 1.0
    >>> pool.shape
    (2, 3)
    """
    ctx = ctx or multiprocessing.get_context()
    resolved = np.dtype(dtype)
    n_bytes = int(np.prod(shape)) * resolved.itemsize
    raw = ctx.RawArray("b", max(n_bytes, 1))
    return np.frombuffer(raw, dtype=resolved, count=int(np.prod(shape))
                         ).reshape(tuple(shape))


def train_cohort(model: BatchedModel, optimizer: "BatchedAdam | BatchedSGD",
                 x: np.ndarray, y: np.ndarray,
                 rngs: "Sequence[np.random.Generator]",
                 config: LocalTrainingConfig,
                 rows: Optional[np.ndarray] = None) -> None:
    """Run every client's full local update as one batched tensor program.

    This is the body of a vectorized round, shared by the in-process
    executor and the parallel scheduler's workers: it replays the exact
    sequential schedule — per-client epoch permutations drawn from *rngs*
    (one generator per client, seeded exactly like the sequential
    :class:`repro.data.DataLoader`), same batch boundaries, same optimiser
    arithmetic — with the client loop folded into the leading axis of the
    ``(K, N_vc, …)`` arrays *x* / *y*.  The trained parameters land in
    *model*'s flat value pool; nothing is returned.

    *rows* is the precomputed ``(K, 1)`` client-row index used for per-batch
    gathers (recomputed when omitted — the round-persistent workspace caches
    it across rounds).

    Example
    -------
    >>> import numpy as np
    >>> from repro.federated.client import LocalTrainingConfig
    >>> from repro.nn.batched import BatchedAdam, BatchedModel
    >>> from repro.nn.models import MLP
    >>> model = BatchedModel(MLP(4, 2, hidden=(3,), seed=0), num_clients=2)
    >>> x, y = np.ones((2, 8, 4)), np.zeros((2, 8), dtype=int)
    >>> rngs = [np.random.default_rng(k) for k in range(2)]
    >>> train_cohort(model, BatchedAdam(model), x, y, rngs,
    ...              LocalTrainingConfig(batch_size=4))
    """
    n = x.shape[1]
    if rows is None:
        rows = np.arange(x.shape[0])[:, None]
    model.train()
    for _ in range(config.local_epochs):
        orders = np.stack([rng.permutation(n) for rng in rngs]) if n else None
        for batch_index, start in enumerate(range(0, n, config.batch_size)):
            if (config.max_batches_per_epoch is not None
                    and batch_index >= config.max_batches_per_epoch):
                break
            idx = orders[:, start : start + config.batch_size]
            xb = x[rows, idx]
            yb = y[rows, idx]
            logits = model.forward(xb)
            _, grad = batched_cross_entropy(logits, yb)
            # no zero_grad: batched layer backwards assign (not accumulate)
            model.backward(grad)
            optimizer.step()


class CohortWorkspace:
    """Flat pools, optimiser state and cohort buffers reused across rounds.

    Example
    -------
    >>> from repro.nn.models import MLP
    >>> workspace = CohortWorkspace(MLP(4, 2, hidden=(3,), seed=0),
    ...                             num_clients=8)
    >>> workspace.model.num_clients, workspace.rounds_bound
    (8, 1)
    >>> workspace.adopt(MLP(4, 2, hidden=(3,), seed=0), num_clients=8)
    True
    """

    def __init__(self, template: Module, num_clients: int,
                 dtype: "str | np.dtype" = np.float64):
        self.dtype = np.dtype(dtype)
        #: the batched tensor program; its flat pools live for the workspace's lifetime
        self.model = BatchedModel(template, num_clients, dtype=self.dtype)
        self.num_clients = num_clients
        #: dense (K, N_vc, …) data buffers with per-slot restack skipping
        self.buffer = CohortBuffer(num_clients, dtype=self.dtype)
        self._optimizer: "Optional[BatchedAdam | BatchedSGD]" = None
        self._optimizer_kind: Optional[str] = None
        #: precomputed client-row index for per-batch gathers
        self.client_rows = np.arange(num_clients)[:, None]
        #: rounds served by this workspace (first build included)
        self.rounds_bound = 1

    # -- per-round lifecycle ---------------------------------------------------

    def adopt(self, template: Module, num_clients: int) -> bool:
        """Try to serve a new round from the existing pools.

        Returns ``True`` after rebinding the factory-fresh *template* into
        the batched model (adopting its dropout RNG streams, exactly what
        every sequential client's fresh clone would use).  ``False`` means
        the round is shape-incompatible — different cohort size or model
        structure — and the executor must build a new workspace.
        """
        if num_clients != self.num_clients:
            return False
        if not self.model.rebind(template):
            return False
        self.rounds_bound += 1
        return True

    def stack(self, clients: Sequence[FederatedClient]) -> tuple[np.ndarray, np.ndarray]:
        """The round's ``(K, N_vc, …)`` data, restacking only changed slots."""
        return self.buffer.stack([client.cohort_slot() for client in clients])

    def optimizer_for(self, config: LocalTrainingConfig) -> "BatchedAdam | BatchedSGD":
        """The round's optimiser: state reset in place, never reallocated.

        Sequential clients construct a fresh optimiser every round, so the
        persistent one is reset (moments zeroed, step counter rewound) rather
        than carried over — bit-identical semantics without the pool-sized
        allocations.  Switching between Adam and SGD mid-run rebuilds it.
        """
        if self._optimizer is None or self._optimizer_kind != config.optimizer:
            cls = BatchedAdam if config.optimizer == "adam" else BatchedSGD
            self._optimizer = cls(self.model, lr=config.learning_rate)
            self._optimizer_kind = config.optimizer
        else:
            self._optimizer.lr = config.learning_rate
            self._optimizer.reset()
        return self._optimizer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CohortWorkspace(clients={self.num_clients}, "
                f"dtype={self.dtype.name}, rounds_bound={self.rounds_bound}, "
                f"buffer={self.buffer!r})")
