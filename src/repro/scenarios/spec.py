"""Declarative, validated scenario specifications for fault injection.

The paper evaluates Dubhe in a static world: a fixed client population,
static label skew, and every selected client finishing every round.
Production federated systems are defined by the opposite — devices go
offline, new devices enrol, selected clients straggle past the round
deadline or drop out mid-update, and the data on a device drifts over time.
A :class:`ScenarioSpec` describes one such world declaratively; the seeded
:class:`~repro.scenarios.engine.FaultInjector` turns it into reproducible
per-round fault decisions that the
:class:`~repro.federated.FederatedSimulation` round loop consults.

Every spec is an immutable dataclass validated on construction, so a typo'd
probability or an inverted churn window fails at build time rather than ten
rounds into a run.  The **zero-fault identity** is the design anchor: an
empty ``ScenarioSpec()`` injects nothing, and a simulation configured with
one produces results bit-identical to a simulation with no scenario at all
(asserted by the test suite for every executor back-end).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = [
    "AvailabilitySpec",
    "ChurnSpec",
    "DriftSpec",
    "DropoutSpec",
    "NetworkSpec",
    "PARTITION_DIRECTIONS",
    "ScenarioSpec",
    "StragglerSpec",
]

#: Directions a one-way (or two-way) partition can cut a client's link:
#: ``"to_server"`` drops client → server traffic, ``"to_client"`` drops
#: server → client traffic, ``"both"`` isolates the client entirely.
PARTITION_DIRECTIONS: tuple[str, ...] = ("to_server", "to_client", "both")


def _normalized_schedule(schedule: Mapping[int, object], what: str,
                         ) -> "dict[int, tuple[int, ...]]":
    """Validate a ``round -> client ids`` mapping into sorted int tuples."""
    normalized: dict[int, tuple[int, ...]] = {}
    for round_index, clients in dict(schedule).items():
        r = int(round_index)
        if r < 0:
            raise ValueError(f"{what} round indices must be >= 0, got {r}")
        ids = tuple(sorted(int(c) for c in clients))  # type: ignore[call-overload]
        if any(c < 0 for c in ids):
            raise ValueError(f"{what} client ids must be >= 0")
        if len(set(ids)) != len(ids):
            raise ValueError(f"{what} lists client ids more than once in round {r}")
        normalized[r] = ids
    return normalized


def _normalized_rounds(rounds: Mapping[int, int], what: str) -> "dict[int, int]":
    """Validate a ``client id -> round`` mapping into plain ints."""
    normalized: dict[int, int] = {}
    for client_id, round_index in dict(rounds).items():
        c, r = int(client_id), int(round_index)
        if c < 0:
            raise ValueError(f"{what} client ids must be >= 0")
        if r < 0:
            raise ValueError(f"{what} rounds must be >= 0")
        normalized[c] = r
    return normalized


def _check_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")


@dataclass(frozen=True)
class AvailabilitySpec:
    """Time-varying client availability.

    ``offline_probability`` is the per-(client, round) chance that a selected
    client happens to be unreachable when the round starts (its update is
    never requested); ``down_rounds`` schedules deterministic outages as a
    ``round -> client ids`` mapping (e.g. a nightly reboot window).  Both
    remove the client *before* training, so no compute is wasted on it.

    Example
    -------
    >>> spec = AvailabilitySpec(offline_probability=0.1, down_rounds={3: (0, 7)})
    >>> spec.down_rounds[3]
    (0, 7)
    """

    offline_probability: float = 0.0
    down_rounds: Mapping[int, tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        _check_probability(self.offline_probability, "offline_probability")
        object.__setattr__(self, "down_rounds",
                           _normalized_schedule(self.down_rounds, "down_rounds"))

    def is_empty(self) -> bool:
        """Whether this spec can never take a client offline.

        Example
        -------
        >>> AvailabilitySpec().is_empty()
        True
        """
        return self.offline_probability == 0.0 and not self.down_rounds


@dataclass(frozen=True)
class ChurnSpec:
    """Client churn: devices joining and leaving the federation mid-run.

    ``joins`` maps a client id to the first round it is part of the
    federation (selected earlier, it fails with cause ``"not_joined"``);
    ``leaves`` maps a client id to the first round it is gone (from then on
    it fails with cause ``"left"``).  Clients in neither mapping are present
    for the whole run.  A client listed in both must join before it leaves.

    Example
    -------
    >>> churn = ChurnSpec(joins={11: 2}, leaves={4: 3})
    >>> churn.joins[11], churn.leaves[4]
    (2, 3)
    """

    joins: Mapping[int, int] = field(default_factory=dict)
    leaves: Mapping[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        joins = _normalized_rounds(self.joins, "joins")
        leaves = _normalized_rounds(self.leaves, "leaves")
        for client_id, leave_round in leaves.items():
            join_round = joins.get(client_id, 0)
            if leave_round <= join_round:
                raise ValueError(
                    f"client {client_id} leaves at round {leave_round} but only "
                    f"joins at round {join_round}"
                )
        object.__setattr__(self, "joins", joins)
        object.__setattr__(self, "leaves", leaves)

    def is_empty(self) -> bool:
        """Whether no client ever joins late or leaves early.

        Example
        -------
        >>> ChurnSpec().is_empty()
        True
        """
        return not self.joins and not self.leaves


@dataclass(frozen=True)
class StragglerSpec:
    """Stragglers: clients whose (simulated) local update runs long.

    Each surviving selected client straggles with ``probability``; a
    straggler's simulated delay is drawn from an exponential distribution
    with mean ``mean_delay`` (seconds of simulated wall-time, not real
    sleeping).  ``deadline`` is the round's collection deadline: a straggler
    whose delay exceeds it is dropped by the executor with cause
    ``"straggler"`` (its update arrives too late to aggregate); ``None``
    waits forever, so stragglers only stretch the simulated round duration.

    Example
    -------
    >>> spec = StragglerSpec(probability=0.2, mean_delay=5.0, deadline=8.0)
    >>> spec.deadline
    8.0
    """

    probability: float = 0.0
    mean_delay: float = 0.0
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        _check_probability(self.probability, "straggler probability")
        if self.mean_delay < 0:
            raise ValueError("mean_delay must be >= 0")
        if self.probability > 0 and self.mean_delay == 0:
            raise ValueError("straggling clients need mean_delay > 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive (or None)")

    def is_empty(self) -> bool:
        """Whether no client ever straggles.

        Example
        -------
        >>> StragglerSpec().is_empty()
        True
        """
        return self.probability == 0.0


@dataclass(frozen=True)
class DropoutSpec:
    """Mid-round dropouts: clients that start training but never report back.

    Each surviving selected client drops out with ``probability``; its local
    compute is wasted (exactly as in a real deployment) and its update is
    excluded from aggregation with cause ``"dropout"``.

    Example
    -------
    >>> DropoutSpec(probability=0.05).probability
    0.05
    """

    probability: float = 0.0

    def __post_init__(self) -> None:
        _check_probability(self.probability, "dropout probability")

    def is_empty(self) -> bool:
        """Whether no client ever drops out.

        Example
        -------
        >>> DropoutSpec().is_empty()
        True
        """
        return self.probability == 0.0


@dataclass(frozen=True)
class DriftSpec:
    """Label-distribution drift over rounds (stresses re-registration).

    Every ``period`` rounds (at rounds ``period, 2·period, …``) each
    client's per-class sample counts rotate by ``shift`` class positions —
    the canonical label-drift model: the classes a client dominates change
    while its skew *profile* is preserved.  The simulation then regenerates
    client data from the drifted counts and re-runs Dubhe registration
    through :mod:`repro.core.registry` — the paper's periodic
    re-registration, which its static evaluation never exercises.  With
    ``secure_reregistration`` the refresh additionally runs the full
    encrypted path (:class:`repro.core.secure.SecureRegistrationRound`,
    with a ``key_size``-bit round key) and asserts the decrypted aggregate
    registry matches the plaintext one.

    Example
    -------
    >>> drift = DriftSpec(period=10, shift=2)
    >>> drift.period, drift.shift
    (10, 2)
    """

    period: int = 0
    shift: int = 1
    secure_reregistration: bool = False
    key_size: int = 128

    def __post_init__(self) -> None:
        if self.period < 0:
            raise ValueError("period must be >= 0 (0 disables drift)")
        if self.period > 0 and self.shift == 0:
            raise ValueError("drift with period > 0 needs a non-zero shift")
        if self.key_size < 16:
            raise ValueError("key_size too small")

    def is_empty(self) -> bool:
        """Whether the label distributions never drift.

        Example
        -------
        >>> DriftSpec().is_empty()
        True
        """
        return self.period == 0


@dataclass(frozen=True)
class NetworkSpec:
    """Real network faults, induced on the wire by the chaos proxy.

    Unlike every other sub-spec — which the :class:`~repro.scenarios.engine.
    FaultInjector` *simulates* inside the round loop — a ``NetworkSpec``
    drives :class:`repro.transport.chaos.ChaosProxy`, a TCP relay that
    actually delays, damages and cuts traffic between real sockets.  It
    therefore only applies to ``transport kind="socket"`` runs.

    ``latency`` adds a fixed one-way delay (seconds) to every relayed
    frame and ``jitter`` an exponential random extra with that mean;
    ``bandwidth`` caps the relay at that many bytes/second (``None`` is
    unlimited); ``flip_probability`` / ``truncate_probability`` /
    ``reset_probability`` are per-frame chances of a single flipped bit, a
    mid-frame truncation, or an abrupt connection reset; ``partitions``
    maps a client id to a :data:`PARTITION_DIRECTIONS` entry, silently
    discarding that client's round traffic in the named direction(s).

    Every probabilistic decision is drawn from an RNG keyed by
    ``(chaos seed, round, client, direction, frame ordinal)`` — the same
    determinism contract as the fault injector, so same-seed chaos runs
    produce identical failure records.

    Example
    -------
    >>> spec = NetworkSpec(latency=0.01, flip_probability=0.1,
    ...                    partitions={3: "to_server"})
    >>> spec.partitions[3]
    'to_server'
    """

    latency: float = 0.0
    jitter: float = 0.0
    bandwidth: Optional[float] = None
    flip_probability: float = 0.0
    truncate_probability: float = 0.0
    reset_probability: float = 0.0
    partitions: Mapping[int, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive (or None)")
        _check_probability(self.flip_probability, "flip_probability")
        _check_probability(self.truncate_probability, "truncate_probability")
        _check_probability(self.reset_probability, "reset_probability")
        partitions: dict[int, str] = {}
        for client_id, direction in dict(self.partitions).items():
            c = int(client_id)
            if c < 0:
                raise ValueError("partition client ids must be >= 0")
            if direction not in PARTITION_DIRECTIONS:
                raise ValueError(
                    f"partition direction must be one of "
                    f"{PARTITION_DIRECTIONS}, got {direction!r}"
                )
            partitions[c] = direction
        object.__setattr__(self, "partitions", partitions)

    def is_empty(self) -> bool:
        """Whether this spec induces no network fault of any kind.

        An empty ``NetworkSpec`` still routes traffic through the chaos
        proxy (exercising the relay) but forwards every frame untouched —
        the proxy's zero-fault identity.

        Example
        -------
        >>> NetworkSpec().is_empty()
        True
        """
        return (self.latency == 0.0 and self.jitter == 0.0
                and self.bandwidth is None and self.flip_probability == 0.0
                and self.truncate_probability == 0.0
                and self.reset_probability == 0.0 and not self.partitions)


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative fault-injection scenario.

    Composes availability, churn, stragglers, dropouts and label drift —
    plus, for socket-transport runs, real wire-level faults
    (:class:`NetworkSpec`, induced by the chaos proxy rather than simulated)
    — and the partial-round aggregation policy: ``min_participation`` is the
    fraction of the *planned* cohort that must survive for the round to be
    aggregated — below it the round is skipped and the global model carried
    forward unchanged.  ``seed`` makes every injected fault reproducible:
    each decision is drawn from an RNG keyed by
    ``(seed, round_index, client_id)``, so repeated runs — and runs on
    different executor back-ends — see identical faults.

    The default ``ScenarioSpec()`` is empty: it injects nothing and leaves
    every back-end bit-identical to a scenario-free run.

    Example
    -------
    >>> spec = ScenarioSpec(dropouts=DropoutSpec(probability=0.1), seed=7)
    >>> spec.is_empty(), ScenarioSpec().is_empty()
    (False, True)
    """

    availability: AvailabilitySpec = field(default_factory=AvailabilitySpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    stragglers: StragglerSpec = field(default_factory=StragglerSpec)
    dropouts: DropoutSpec = field(default_factory=DropoutSpec)
    drift: DriftSpec = field(default_factory=DriftSpec)
    network: Optional[NetworkSpec] = None
    min_participation: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name, cls in (("availability", AvailabilitySpec),
                          ("churn", ChurnSpec),
                          ("stragglers", StragglerSpec),
                          ("dropouts", DropoutSpec),
                          ("drift", DriftSpec)):
            if not isinstance(getattr(self, name), cls):
                raise TypeError(f"{name} must be a {cls.__name__}")
        if self.network is not None and not isinstance(self.network, NetworkSpec):
            raise TypeError("network must be a NetworkSpec (or None)")
        _check_probability(self.min_participation, "min_participation")
        if int(self.seed) != self.seed:
            raise ValueError("seed must be an integer")
        if self.seed < 0:
            raise ValueError("seed must be >= 0 (SeedSequence entropy)")

    def is_empty(self) -> bool:
        """Whether this scenario injects no fault of any kind.

        An empty scenario is the zero-fault identity: the round loop takes
        the scenario-aware code path, but every decision is a no-op and the
        run stays bit-identical to a scenario-free one.

        Example
        -------
        >>> ScenarioSpec(min_participation=0.5).is_empty()
        True
        """
        return (self.availability.is_empty() and self.churn.is_empty()
                and self.stragglers.is_empty() and self.dropouts.is_empty()
                and self.drift.is_empty()
                and (self.network is None or self.network.is_empty()))
