"""Determinism and fault-decision tests for the FaultInjector engine."""

import pytest

from repro.scenarios import (
    FAILURE_CAUSES,
    AvailabilitySpec,
    ChurnSpec,
    ClientFault,
    CohortFaults,
    DriftSpec,
    DropoutSpec,
    FaultInjector,
    RoundPlan,
    ScenarioSpec,
    StragglerSpec,
)


class TestClientFault:
    def test_cause_vocabulary_enforced(self):
        ClientFault(0, "dropout")
        with pytest.raises(ValueError):
            ClientFault(0, "exploded")

    def test_causes_cover_pre_and_mid_round(self):
        assert set(FAILURE_CAUSES) == {
            "not_joined", "left", "offline", "dropout", "straggler"}


class TestCohortFaults:
    def test_empty_is_noop(self):
        faults = CohortFaults()
        assert faults.resolve() == {}
        assert faults.round_delay() == 0.0

    def test_deadline_drops_late_stragglers(self):
        faults = CohortFaults(dropped={1: "dropout"},
                              delays={0: 1.0, 2: 9.0}, deadline=5.0)
        assert faults.resolve() == {1: "dropout", 2: "straggler"}
        # the surviving straggler (position 0) sets the round duration
        assert faults.round_delay() == 1.0

    def test_no_deadline_waits_for_everyone(self):
        faults = CohortFaults(delays={0: 42.0}, deadline=None)
        assert faults.resolve() == {}
        assert faults.round_delay() == 42.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CohortFaults(delays={0: -1.0})
        with pytest.raises(ValueError):
            CohortFaults(deadline=0.0)


class TestRoundPlan:
    def test_cohort_faults_reindexes_by_trainable_position(self):
        plan = RoundPlan(round_index=0, planned=(8, 3, 5), trainable=(3, 5),
                         pre_faults=(ClientFault(8, "offline"),),
                         dropouts=(5,), delays={3: 2.0}, deadline=4.0)
        faults = plan.cohort_faults()
        assert faults.dropped == {1: "dropout"}
        assert faults.delays == {0: 2.0}
        assert faults.deadline == 4.0

    def test_failures_by_client_merges_pre_and_dropouts(self):
        plan = RoundPlan(0, (1, 2, 3), (2, 3), (ClientFault(1, "left"),),
                         (3,), {}, None)
        assert plan.failures_by_client() == {1: "left", 3: "dropout"}


class TestFaultInjectorDeterminism:
    SPEC = ScenarioSpec(
        availability=AvailabilitySpec(offline_probability=0.3),
        stragglers=StragglerSpec(probability=0.4, mean_delay=3.0, deadline=5.0),
        dropouts=DropoutSpec(probability=0.3),
        seed=17,
    )

    def test_same_inputs_same_plan(self):
        injector = FaultInjector(self.SPEC)
        plans = [injector.plan_round(4, range(20)) for _ in range(3)]
        assert plans[0] == plans[1] == plans[2]

    def test_decisions_independent_of_cohort_composition(self):
        # a client's fate at (round, client) must not depend on who else was
        # selected — that is what makes runs comparable across backends and
        # selectors
        injector = FaultInjector(self.SPEC)
        full = injector.plan_round(2, range(30))
        for client_id in range(30):
            alone = injector.plan_round(2, [client_id])
            assert (client_id in alone.dropouts) == (client_id in full.dropouts)
            assert alone.delays.get(client_id) == full.delays.get(client_id)
            pre_full = {f.client_id: f.cause for f in full.pre_faults}
            pre_alone = {f.client_id: f.cause for f in alone.pre_faults}
            assert pre_alone.get(client_id) == pre_full.get(client_id)

    def test_different_seeds_differ(self):
        a = FaultInjector(self.SPEC).plan_round(0, range(50))
        b = FaultInjector(ScenarioSpec(
            availability=self.SPEC.availability,
            stragglers=self.SPEC.stragglers,
            dropouts=self.SPEC.dropouts,
            seed=18,
        )).plan_round(0, range(50))
        assert a != b

    def test_empty_spec_plans_nothing(self):
        plan = FaultInjector(ScenarioSpec()).plan_round(3, [4, 2, 9])
        assert plan.trainable == (4, 2, 9)
        assert plan.pre_faults == () and plan.dropouts == ()
        assert plan.delays == {} and plan.cohort_faults().resolve() == {}


class TestFaultInjectorDecisions:
    def test_churn_presence(self):
        injector = FaultInjector(ScenarioSpec(
            churn=ChurnSpec(joins={5: 3}, leaves={2: 4})))
        assert injector.presence(5, 0) == "not_joined"
        assert injector.presence(5, 3) is None
        assert injector.presence(2, 3) is None
        assert injector.presence(2, 4) == "left"
        assert injector.presence(7, 100) is None

    def test_scheduled_down_rounds(self):
        injector = FaultInjector(ScenarioSpec(
            availability=AvailabilitySpec(down_rounds={1: (3, 4)})))
        plan = injector.plan_round(1, [2, 3, 4])
        assert plan.trainable == (2,)
        assert {f.client_id: f.cause for f in plan.pre_faults} == {
            3: "offline", 4: "offline"}
        assert injector.plan_round(0, [2, 3, 4]).trainable == (2, 3, 4)

    def test_certain_dropout(self):
        injector = FaultInjector(ScenarioSpec(dropouts=DropoutSpec(1.0), seed=3))
        plan = injector.plan_round(0, [1, 2, 3])
        assert plan.dropouts == (1, 2, 3)
        assert plan.cohort_faults().resolve() == {
            0: "dropout", 1: "dropout", 2: "dropout"}

    def test_certain_offline_leaves_nothing_trainable(self):
        injector = FaultInjector(ScenarioSpec(
            availability=AvailabilitySpec(offline_probability=1.0), seed=3))
        plan = injector.plan_round(0, [1, 2])
        assert plan.trainable == ()
        assert plan.dropouts == ()

    def test_straggler_delays_positive_and_deadline_forwarded(self):
        injector = FaultInjector(ScenarioSpec(
            stragglers=StragglerSpec(probability=1.0, mean_delay=2.0,
                                     deadline=7.5), seed=3))
        plan = injector.plan_round(0, range(10))
        assert set(plan.delays) == set(range(10))
        assert all(d > 0 for d in plan.delays.values())
        assert plan.deadline == 7.5

    def test_drift_due_schedule(self):
        injector = FaultInjector(ScenarioSpec(drift=DriftSpec(period=3)))
        assert [injector.drift_due(r) for r in range(7)] == [
            False, False, False, True, False, False, True]
        assert not any(FaultInjector(ScenarioSpec()).drift_due(r)
                       for r in range(10))

    def test_spec_type_enforced(self):
        with pytest.raises(TypeError):
            FaultInjector({"seed": 0})
