"""End-to-end federated training simulation.

:class:`FederatedSimulation` wires together the substrates: a client
partition (who holds what), a synthetic data generator (what the samples look
like), the NumPy model stack, a pluggable client-selection strategy and the
FedVC-style server.  One instance reproduces one curve of Figures 2, 6 or 8:
construct it with a selector (random / greedy / Dubhe), call :meth:`run`, and
read the accuracy series from the returned :class:`TrainingHistory`.

The selector is duck-typed: anything with ``select(round_index)`` returning a
sequence of client indices works, so the Dubhe machinery in
:mod:`repro.core` plugs in without this module importing it (the paper calls
Dubhe "pluggable"; the code structure mirrors that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence

import numpy as np

from ..core.config import resolve_runtime_dtype
from ..data.cohort import DatasetCache
from ..data.dataset import ArrayDataset
from ..data.distributions import emd, uniform_distribution
from ..data.partition import ClientPartition
from ..data.synthetic import SyntheticImageGenerator
from ..nn.module import Module
from .client import FederatedClient, LocalTrainingConfig
from .executor import LocalUpdateExecutor
from .history import RoundRecord, TrainingHistory
from .server import EVAL_BACKENDS, FederatedServer

__all__ = ["ClientSelectorProtocol", "FederatedConfig", "FederatedSimulation"]


class ClientSelectorProtocol(Protocol):
    """Anything that can pick the participating clients of a round."""

    def select(self, round_index: int) -> Sequence[int]:  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class FederatedConfig:
    """Top-level configuration of a federated run.

    ``executor_mode`` selects the local-update back-end
    (``"sequential"``/``"thread"``/``"process"``/``"vectorized"``; see
    :class:`repro.federated.LocalUpdateExecutor`).  ``dataset_cache_size``
    bounds the shared LRU pool of materialised client datasets; ``None``
    disables pooling (each client pins its own data forever, the pre-cache
    behaviour).  ``dtype`` is the cohort-runtime precision knob
    (:data:`repro.core.config.RUNTIME_DTYPES`): ``"float64"`` (default)
    reproduces sequential execution bit-for-bit, ``"float32"`` is the
    vectorized-only fast path with single-precision tolerance.
    ``eval_backend`` picks the server's test pass
    (``"batched"``/``"sequential"``, identical metrics; see
    :class:`repro.federated.FederatedServer`).
    """

    rounds: int = 20
    eval_every: int = 1
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    executor_mode: str = "sequential"
    dataset_cache_size: Optional[int] = 1024
    dtype: str = "float64"
    eval_backend: str = "batched"
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be positive")
        if self.eval_every < 1:
            raise ValueError("eval_every must be positive")
        if self.dataset_cache_size is not None and self.dataset_cache_size < 1:
            raise ValueError("dataset_cache_size must be positive when given")
        resolved = resolve_runtime_dtype(self.dtype)
        if resolved != np.dtype("float64") and self.executor_mode != "vectorized":
            raise ValueError(
                "dtype='float32' is the cohort fast path and requires "
                "executor_mode='vectorized'"
            )
        if self.eval_backend not in EVAL_BACKENDS:
            raise ValueError(f"eval_backend must be one of {EVAL_BACKENDS}")


class FederatedSimulation:
    """Simulate federated training with a pluggable client-selection strategy."""

    def __init__(self, partition: ClientPartition, generator: SyntheticImageGenerator,
                 model_factory: Callable[[], Module], selector: ClientSelectorProtocol,
                 test_set: ArrayDataset, config: Optional[FederatedConfig] = None):
        if partition.num_classes != generator.num_classes:
            raise ValueError("partition and generator disagree on the number of classes")
        self.partition = partition
        self.generator = generator
        self.selector = selector
        self.test_set = test_set
        self.config = config or FederatedConfig()
        self.server = FederatedServer(model_factory,
                                      eval_backend=self.config.eval_backend)
        self.executor = LocalUpdateExecutor(self.config.executor_mode,
                                            dtype=self.config.dtype)
        self.dataset_cache = (
            None if self.config.dataset_cache_size is None
            else DatasetCache(self.config.dataset_cache_size)
        )
        self._uniform = uniform_distribution(partition.num_classes)
        self._clients: dict[int, FederatedClient] = {}
        self._rng = np.random.default_rng(self.config.seed)
        self.history = TrainingHistory()

    # -- client materialisation ----------------------------------------------------

    def client(self, index: int) -> FederatedClient:
        """The :class:`FederatedClient` for partition row *index* (cached, lazy data)."""
        if index not in self._clients:
            counts = self.partition.client_class_counts[index]
            data_seed = (0 if self.config.seed is None else self.config.seed) + 100_003 * index

            def factory(counts=counts, data_seed=data_seed) -> ArrayDataset:
                return self.generator.generate(counts, rng=np.random.default_rng(data_seed))

            self._clients[index] = FederatedClient(
                client_id=index,
                num_classes=self.partition.num_classes,
                dataset_factory=factory,
                seed=data_seed,
                cache=self.dataset_cache,
            )
        return self._clients[index]

    # -- round loop -------------------------------------------------------------------

    def run_round(self, round_index: int) -> RoundRecord:
        """Run one complete round: select, train locally, aggregate, evaluate."""
        selected = list(self.selector.select(round_index))
        if len(selected) == 0:
            raise RuntimeError(f"selector returned no clients at round {round_index}")
        population = self.partition.selection_population(selected)
        bias = emd(population, self._uniform)

        clients = [self.client(k) for k in selected]
        # read-only views: every executor back-end copies the state on load,
        # so one shared global state serves all K workers without K deep copies
        global_state = self.server.global_state(copy=False)
        states = self.executor.run_round(
            clients, self.server.new_client_model, global_state, self.config.local,
            round_index=round_index,
        )
        self.server.aggregate(states)

        accuracy: Optional[float] = None
        if round_index % self.config.eval_every == 0:
            accuracy = self.server.evaluate(self.test_set)["accuracy"]

        record = RoundRecord(
            round_index=round_index,
            selected_clients=tuple(selected),
            population_distribution=population,
            population_bias=bias,
            test_accuracy=accuracy,
        )
        self.history.append(record)
        return record

    def run(self, rounds: Optional[int] = None, progress: Optional[Callable[[RoundRecord], None]] = None,
            ) -> TrainingHistory:
        """Run the full federated training loop and return the history."""
        total = rounds if rounds is not None else self.config.rounds
        if total < 1:
            raise ValueError("rounds must be positive")
        for t in range(total):
            record = self.run_round(t)
            if progress is not None:
                progress(record)
        return self.history
