"""Federated-learning simulation engine (the substrate Dubhe plugs into).

Public API
----------
* :class:`FederatedClient`, :class:`LocalTrainingConfig` — local training.
* :class:`FederatedServer` — global model and aggregation.
* :func:`average_states`, :func:`weighted_average_states` — FedVC/FedAvg rules.
* :class:`LocalUpdateExecutor` — sequential/thread/process/vectorized/
  parallel local updates (``"vectorized"`` trains the whole cohort as one
  batched tensor program, ``"parallel"`` shards it across persistent worker
  processes; see :mod:`repro.nn.batched` and
  :mod:`repro.federated.scheduler`).
* :class:`StackedClientStates` — zero-copy per-client views into the
  cohort's stacked parameters, aggregated via one mean over the client axis.
* :class:`CohortWorkspace` — the round-persistent pools/optimiser/data
  buffers the cohort back-ends reuse across rounds.
* :class:`CohortScheduler` — the multi-cohort process fleet behind
  ``executor_mode="parallel"`` (shared-memory pools, warm per-worker
  workspaces, deterministic merge).
* :class:`FederatedSimulation`, :class:`FederatedConfig` — the round loop
  (``FederatedConfig(scenario=...)`` opts into :mod:`repro.scenarios` fault
  injection with partial-round aggregation).
* :func:`partial_round_weights` — survivor-normalised FedAvg weights of a
  (possibly partial) round.
* :class:`TrainingHistory`, :class:`RoundRecord` — per-round metrics,
  including planned-vs-actual participation and failure causes under a
  scenario.
"""

from .aggregation import (
    StackedClientStates,
    average_states,
    partial_round_weights,
    state_difference_norm,
    weighted_average_states,
)
from .client import FederatedClient, LocalTrainingConfig
from .executor import EXECUTOR_MODES, LocalUpdateExecutor
from .history import RoundRecord, TrainingHistory
from .scheduler import CohortScheduler, SchedulerError
from .server import EVAL_BACKENDS, FederatedServer
from .simulation import ClientSelectorProtocol, FederatedConfig, FederatedSimulation
from .workspace import CohortWorkspace, shared_pool, train_cohort

__all__ = [
    "ClientSelectorProtocol",
    "CohortScheduler",
    "CohortWorkspace",
    "EVAL_BACKENDS",
    "EXECUTOR_MODES",
    "FederatedClient",
    "FederatedConfig",
    "FederatedServer",
    "FederatedSimulation",
    "LocalTrainingConfig",
    "LocalUpdateExecutor",
    "RoundRecord",
    "SchedulerError",
    "StackedClientStates",
    "TrainingHistory",
    "average_states",
    "partial_round_weights",
    "shared_pool",
    "state_difference_norm",
    "train_cohort",
    "weighted_average_states",
]
