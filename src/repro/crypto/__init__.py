"""Additively homomorphic encryption substrate (Paillier) for Dubhe.

Public API
----------
* :func:`generate_keypair`, :class:`PaillierPublicKey`,
  :class:`PaillierPrivateKey` — the cryptosystem.
* :class:`FixedPointEncoder`, :class:`EncodedNumber` — float <-> integer
  fixed-point encoding.
* :class:`EncryptedNumber` — a single additively homomorphic ciphertext.
* :class:`EncryptedVector` — element-wise encrypted vectors (registries and
  label distributions).
* :class:`PackedEncryptedVector`, :class:`PackingScheme` — BatchCrypt-style
  ciphertext packing (many slots per ciphertext).
* :class:`NoisePool` — precomputed encryption noise ``r^n mod n²``.
* :class:`BatchCryptoExecutor`, :func:`encrypt_many`, :func:`decrypt_many` —
  parallel bulk encryption/decryption.
* :class:`KeyAgent` — the per-round key-generation / decryption agent role.
"""

from .batch import BatchCryptoExecutor, decrypt_many, encrypt_many
from .encoding import DEFAULT_BASE, DEFAULT_PRECISION, EncodedNumber, FixedPointEncoder
from .encrypted_number import EncryptedNumber, decrypt_number, encrypt_number
from .keyagent import AgentStats, KeyAgent
from .packing import DEFAULT_MAX_WEIGHT, PackedEncryptedVector, PackingScheme
from .paillier import (
    DEFAULT_KEY_SIZE,
    PAPER_KEY_SIZE,
    NoisePool,
    PaillierKeypair,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)
from .primes import generate_distinct_primes, generate_prime, is_probable_prime
from .vector import EncryptedVector, plaintext_vector_bytes

__all__ = [
    "DEFAULT_BASE",
    "DEFAULT_PRECISION",
    "DEFAULT_KEY_SIZE",
    "DEFAULT_MAX_WEIGHT",
    "PAPER_KEY_SIZE",
    "AgentStats",
    "BatchCryptoExecutor",
    "EncodedNumber",
    "EncryptedNumber",
    "EncryptedVector",
    "FixedPointEncoder",
    "KeyAgent",
    "NoisePool",
    "PackedEncryptedVector",
    "PackingScheme",
    "PaillierKeypair",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "decrypt_many",
    "decrypt_number",
    "encrypt_many",
    "encrypt_number",
    "generate_distinct_primes",
    "generate_keypair",
    "generate_prime",
    "is_probable_prime",
    "plaintext_vector_bytes",
]
