#!/usr/bin/env python
"""FEMNIST-scale client selection: Dubhe at 52 classes and thousands of clients.

The paper's third workload stresses Dubhe where the registry is *sparse*: 52
letter classes, reference set G = {1, 52}, and a large, naturally skewed
client population (Table 1: ρ = 13.64, EMD_avg = 0.554, N = 8962).  This
example rebuilds that federation (synthetically — see DESIGN.md for the
substitution), runs Dubhe against random and greedy selection, and reports
the population bias each method achieves, plus how the registry's sparsity
shows up in which letters never get a dominating client (the Figure 10
discussion).

Run it with::

    python examples/femnist_selection.py            # 2000 clients, fast
    python examples/femnist_selection.py --paper    # 8962 clients as in the paper
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.core import DubheConfig, DubheSelector, GreedySelector, RandomSelector
from repro.core.parameter_search import search_thresholds
from repro.data import FEMNIST_PAPER_CLIENTS, make_femnist_federation


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper", action="store_true",
                        help="use the paper's full client count (8962)")
    parser.add_argument("--clients", type=int, default=2000)
    parser.add_argument("--k", type=int, default=20, help="participants per round")
    parser.add_argument("--rounds", type=int, default=30, help="selection rounds to average")
    args = parser.parse_args()

    n_clients = FEMNIST_PAPER_CLIENTS if args.paper else args.clients
    federation = make_femnist_federation(n_clients=n_clients, samples_per_client=64, seed=0)
    distributions = federation.partition.client_distributions()
    print("FEMNIST-like federation")
    for key, value in federation.summary().items():
        print(f"  {key:<18}: {value}")

    # -------------------------------------------------------------- selectors
    config = DubheConfig(
        num_classes=52, reference_set=(1, 52),
        participants_per_round=args.k, tentative_selections=5, seed=0,
    )
    search = search_thresholds(distributions, config, sigma_grid=(0.1, 0.2, 0.3, 0.5), seed=0)
    print(f"\nparameter search settled thresholds: {search.thresholds}")

    selectors = {
        "random": RandomSelector(distributions, args.k, seed=1),
        "greedy": GreedySelector(distributions, args.k, seed=1),
        "dubhe": DubheSelector(distributions, search.config, seed=1),
    }

    uniform = np.full(52, 1 / 52)
    print(f"\nPopulation bias ||p_o − p_u||₁ over {args.rounds} rounds (K = {args.k})")
    populations = {}
    for name, selector in selectors.items():
        biases, pops = [], []
        for r in range(args.rounds):
            selected = selector.select(r)
            pop = distributions[np.asarray(selected)].mean(axis=0)
            pops.append(pop)
            biases.append(np.abs(pop - uniform).sum())
        populations[name] = np.mean(pops, axis=0)
        print(f"  {name:<7}: mean={np.mean(biases):.4f}  std={np.std(biases):.4f}")

    # ------------------------------------------------------ registry sparsity
    dubhe = selectors["dubhe"]
    assert isinstance(dubhe, DubheSelector)
    overall = dubhe.overall_registry
    single_block = overall[: 52]
    missing = np.flatnonzero(single_block == 0)
    print("\nRegistry sparsity (single-dominating-class block):")
    print(f"  letters with at least one dominating client : {52 - missing.size}/52")
    print(f"  letters never dominated (minority letters)   : {missing.size}")
    if missing.size:
        print(f"  those letters                                : {missing.tolist()[:15]}"
              + (" ..." if missing.size > 15 else ""))
    avg_pop = populations["dubhe"]
    print(f"  avg participated share of the rarest letter  : {avg_pop.min():.4f} "
          f"(uniform target {1 / 52:.4f})")


if __name__ == "__main__":
    main()
