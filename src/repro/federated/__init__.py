"""Federated-learning simulation engine (the substrate Dubhe plugs into).

Public API
----------
* :class:`FederatedClient`, :class:`LocalTrainingConfig` — local training.
* :class:`FederatedServer` — global model and aggregation.
* :func:`average_states`, :func:`weighted_average_states` — FedVC/FedAvg rules.
* :class:`LocalUpdateExecutor` — sequential/thread/process/vectorized local
  updates (``"vectorized"`` trains the whole cohort as one batched tensor
  program; see :mod:`repro.nn.batched`).
* :class:`StackedClientStates` — zero-copy per-client views into the
  cohort's stacked parameters, aggregated via one mean over the client axis.
* :class:`CohortWorkspace` — the round-persistent pools/optimiser/data
  buffers the vectorized back-end reuses across rounds.
* :class:`FederatedSimulation`, :class:`FederatedConfig` — the round loop.
* :class:`TrainingHistory`, :class:`RoundRecord` — per-round metrics.
"""

from .aggregation import (
    StackedClientStates,
    average_states,
    state_difference_norm,
    weighted_average_states,
)
from .client import FederatedClient, LocalTrainingConfig
from .executor import LocalUpdateExecutor
from .history import RoundRecord, TrainingHistory
from .server import EVAL_BACKENDS, FederatedServer
from .simulation import ClientSelectorProtocol, FederatedConfig, FederatedSimulation
from .workspace import CohortWorkspace

__all__ = [
    "ClientSelectorProtocol",
    "CohortWorkspace",
    "EVAL_BACKENDS",
    "FederatedClient",
    "FederatedConfig",
    "FederatedServer",
    "FederatedSimulation",
    "LocalTrainingConfig",
    "LocalUpdateExecutor",
    "RoundRecord",
    "StackedClientStates",
    "TrainingHistory",
    "average_states",
    "state_difference_norm",
    "weighted_average_states",
]
