"""Round-persistent state of the vectorized (cohort) execution back-end.

PR 2 made a single vectorized round fast; this module makes *multi-round*
simulations fast by keeping everything a round allocates alive between
rounds.  A :class:`CohortWorkspace` owns

* the :class:`~repro.nn.batched.BatchedModel` with its flat ``(K·P)``
  value/grad pools,
* the fused cohort optimiser (Adam moments / SGD velocity, pool-sized), and
* the dense ``(K, N_vc, …)`` data buffers
  (:class:`~repro.data.cohort.CohortBuffer`),

and :class:`~repro.federated.LocalUpdateExecutor` reuses one workspace for
as long as consecutive rounds are *shape-compatible* (same cohort size, same
model architecture, same dtype).  Each round the executor rebinds the fresh
template model into the existing pools (:meth:`CohortWorkspace.adopt`),
resets — never reallocates — the optimiser state, and restacks only the data
slots whose selected client changed.  Every reuse path preserves the
sequential contract exactly: a rebound round is arithmetically
indistinguishable from a freshly built one, because sequential clients also
start every round from a factory-fresh model and optimiser.

Numerical safety valves: a structurally different template, a changed cohort
size, or an unregistered custom layer silently rebuilds the workspace
(counted in ``LocalUpdateExecutor.workspace_builds``); a ragged cohort
raises through to the executor's usual sequential fallback while leaving the
workspace intact for the next dense round.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..data.cohort import CohortBuffer
from ..nn.batched import BatchedAdam, BatchedModel, BatchedSGD
from ..nn.module import Module
from .client import FederatedClient, LocalTrainingConfig

__all__ = ["CohortWorkspace"]


class CohortWorkspace:
    """Flat pools, optimiser state and cohort buffers reused across rounds."""

    def __init__(self, template: Module, num_clients: int,
                 dtype: "str | np.dtype" = np.float64):
        self.dtype = np.dtype(dtype)
        #: the batched tensor program; its flat pools live for the workspace's lifetime
        self.model = BatchedModel(template, num_clients, dtype=self.dtype)
        self.num_clients = num_clients
        #: dense (K, N_vc, …) data buffers with per-slot restack skipping
        self.buffer = CohortBuffer(num_clients, dtype=self.dtype)
        self._optimizer: "Optional[BatchedAdam | BatchedSGD]" = None
        self._optimizer_kind: Optional[str] = None
        #: precomputed client-row index for per-batch gathers
        self.client_rows = np.arange(num_clients)[:, None]
        #: rounds served by this workspace (first build included)
        self.rounds_bound = 1

    # -- per-round lifecycle ---------------------------------------------------

    def adopt(self, template: Module, num_clients: int) -> bool:
        """Try to serve a new round from the existing pools.

        Returns ``True`` after rebinding the factory-fresh *template* into
        the batched model (adopting its dropout RNG streams, exactly what
        every sequential client's fresh clone would use).  ``False`` means
        the round is shape-incompatible — different cohort size or model
        structure — and the executor must build a new workspace.
        """
        if num_clients != self.num_clients:
            return False
        if not self.model.rebind(template):
            return False
        self.rounds_bound += 1
        return True

    def stack(self, clients: Sequence[FederatedClient]) -> tuple[np.ndarray, np.ndarray]:
        """The round's ``(K, N_vc, …)`` data, restacking only changed slots."""
        return self.buffer.stack([client.cohort_slot() for client in clients])

    def optimizer_for(self, config: LocalTrainingConfig) -> "BatchedAdam | BatchedSGD":
        """The round's optimiser: state reset in place, never reallocated.

        Sequential clients construct a fresh optimiser every round, so the
        persistent one is reset (moments zeroed, step counter rewound) rather
        than carried over — bit-identical semantics without the pool-sized
        allocations.  Switching between Adam and SGD mid-run rebuilds it.
        """
        if self._optimizer is None or self._optimizer_kind != config.optimizer:
            cls = BatchedAdam if config.optimizer == "adam" else BatchedSGD
            self._optimizer = cls(self.model, lr=config.learning_rate)
            self._optimizer_kind = config.optimizer
        else:
            self._optimizer.lr = config.learning_rate
            self._optimizer.reset()
        return self._optimizer

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"CohortWorkspace(clients={self.num_clients}, "
                f"dtype={self.dtype.name}, rounds_bound={self.rounds_bound}, "
                f"buffer={self.buffer!r})")
