"""``python -m repro.ledger`` — inspect, verify and resume recorded runs.

Four subcommands, all operating on one ledger file:

* ``list LEDGER`` — every recorded run: id, name, status, committed/planned
  rounds, wall-clock and git SHA.
* ``show LEDGER [RUN]`` — one run in full: recorded config, seeds,
  benchmark context and the per-round table (selection, survivors,
  accuracy, bias, failures).
* ``verify LEDGER [RUN]`` — rebuild the run from its recorded recipe,
  re-execute it (optionally on a different executor back-end) and assert
  every round's selections and metrics are bit-identical; exits non-zero
  with a structured diff on mismatch.
* ``resume LEDGER [RUN]`` — rebuild the run from its recipe, restore the
  last committed checkpoint and run the remaining rounds, committing to
  the same run row.

``verify`` and ``resume`` need the run's recorded recipe (see
:class:`~repro.ledger.codec.RunRecipe`); ``--recipe``/``--recipe-kwargs``
override it for runs recorded without one.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .codec import RunRecipe, config_from_dict
from .modes import LedgerVerificationError
from .store import LedgerError, RunInfo, RunLedger

__all__ = ["main"]


def _format_timestamp(value: Optional[float]) -> str:
    if value is None:
        return "-"
    import datetime

    return datetime.datetime.fromtimestamp(value).strftime("%Y-%m-%d %H:%M:%S")


def _list(ledger: RunLedger) -> int:
    runs = ledger.runs()
    if not runs:
        print("no recorded runs")
        return 0
    header = (f"{'run_id':<14} {'name':<16} {'status':<10} "
              f"{'rounds':>9} {'started':<19} {'git':<9}")
    print(header)
    print("-" * len(header))
    for info in runs:
        sha = (info.bench or {}).get("git_sha") or "-"
        print(f"{info.run_id:<14} {info.name[:16]:<16} {info.status:<10} "
              f"{info.rounds_committed:>4}/{info.rounds_planned:<4} "
              f"{_format_timestamp(info.created_at):<19} {sha[:9]:<9}")
    return 0


def _show(ledger: RunLedger, run_id: Optional[str]) -> int:
    info = ledger.run(run_id)
    print(f"run {info.run_id} ({info.name}) — {info.status}, "
          f"{info.rounds_committed}/{info.rounds_planned} rounds committed")
    print(f"  started  {_format_timestamp(info.created_at)}")
    print(f"  finished {_format_timestamp(info.finished_at)}")
    bench = info.bench or {}
    print(f"  git {bench.get('git_sha') or '-'}  cpus "
          f"{bench.get('cpu_count', '-')}  python "
          f"{bench.get('python', '-')}  numpy {bench.get('numpy', '-')}")
    print(f"  seeds  {json.dumps(info.seeds)}")
    print(f"  config {json.dumps(info.config, sort_keys=True)}")
    if info.recipe:
        print(f"  recipe {json.dumps(info.recipe)}")
    if info.report:
        print(f"  report {json.dumps(info.report, sort_keys=True)}")
    rounds = ledger.rounds(info.run_id)
    if not rounds:
        return 0
    print(f"  {'round':>5} {'|selected|':>10} {'|actual|':>8} "
          f"{'accuracy':>9} {'bias':>7} {'skipped':>7}  failures")
    for record in rounds:
        selected = record.get("selected_clients") or []
        actual = record.get("actual_clients")
        accuracy = record.get("test_accuracy")
        failures = record.get("failures") or {}
        causes: dict[str, int] = {}
        for cause in failures.values():
            causes[cause] = causes.get(cause, 0) + 1
        print(f"  {record.get('round_index', '?'):>5} "
              f"{len(selected):>10} "
              f"{len(selected) if actual is None else len(actual):>8} "
              f"{'-' if accuracy is None else format(accuracy, '.4f'):>9} "
              f"{record.get('population_bias', float('nan')):>7.4f} "
              f"{'yes' if record.get('aggregation_skipped') else 'no':>7}  "
              f"{json.dumps(causes) if causes else '-'}")
    return 0


def _build_simulation(path: str, info: RunInfo, run_mode: str,
                      executor_mode: Optional[str],
                      recipe_override: Optional[RunRecipe]):
    from ..api import Session

    recipe = recipe_override
    if recipe is None:
        if not info.recipe:
            raise LedgerError(
                f"run {info.run_id} was recorded without a recipe; pass "
                "--recipe package.module:function to rebuild it"
            )
        recipe = RunRecipe.from_dict(info.recipe)
    overrides: dict = {
        "run_mode": run_mode,
        "ledger_path": path,
        "replay_source_run_id": info.run_id,
    }
    if executor_mode is not None:
        overrides["executor_mode"] = executor_mode
        # executor-specific knobs recorded for another back-end must not
        # leak into this one (e.g. num_workers requires 'parallel')
        if executor_mode != "parallel":
            overrides.update(num_workers=None, shard_policy="contiguous")
    config = config_from_dict(info.config, **overrides)
    return Session(config).with_recipe(recipe).build()


def _verify(path: str, ledger: RunLedger, run_id: Optional[str],
            executor_mode: Optional[str],
            recipe_override: Optional[RunRecipe], as_json: bool) -> int:
    info = ledger.run(run_id)
    simulation = _build_simulation(path, info, "verify", executor_mode,
                                   recipe_override)
    try:
        simulation.run()
        report = simulation.ledger_session.report
    except LedgerVerificationError as exc:
        report = exc.report
    finally:
        simulation.close()
    assert report is not None
    print(json.dumps(report.to_dict(), indent=2) if as_json
          else report.format())
    return 0 if report.ok() else 1


def _resume(path: str, ledger: RunLedger, run_id: Optional[str],
            executor_mode: Optional[str],
            recipe_override: Optional[RunRecipe],
            rounds: Optional[int]) -> int:
    info = ledger.run(run_id)
    already = info.rounds_committed
    simulation = _build_simulation(path, info, "resume", executor_mode,
                                   recipe_override)
    try:
        history = simulation.run(rounds)
    finally:
        simulation.close()
    ran = len(history) - already
    print(f"resumed run {info.run_id} from round {already}: ran {ran} "
          f"round(s), {len(history)} total")
    try:
        print(f"final accuracy {history.final_accuracy():.4f}")
    except ValueError:
        pass
    return 0


def main(argv: "Optional[Sequence[str]]" = None) -> int:
    """Entry point of ``python -m repro.ledger``; returns the exit code.

    Example
    -------
    >>> main(["list", "/tmp/no-such-ledger.db"])  # doctest: +SKIP
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.ledger",
        description=__doc__.splitlines()[0],
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser("list", help="list recorded runs")
    list_parser.add_argument("ledger", help="path to the ledger file")

    show_parser = commands.add_parser("show", help="show one run in full")
    show_parser.add_argument("ledger")
    show_parser.add_argument("run_id", nargs="?", default=None,
                             help="run to show (default: most recent)")

    for name, help_text in (("verify", "re-execute and compare a run"),
                            ("resume", "continue a run from its checkpoint")):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument("ledger")
        sub.add_argument("run_id", nargs="?", default=None)
        sub.add_argument("--executor-mode", default=None,
                         help="re-execute on this back-end instead of the "
                              "recorded one")
        sub.add_argument("--recipe", default=None,
                         help="package.module:function overriding the "
                              "recorded recipe")
        sub.add_argument("--recipe-kwargs", default=None,
                         help="JSON kwargs for --recipe")
        if name == "verify":
            sub.add_argument("--json", action="store_true",
                             help="machine-readable report")
        else:
            sub.add_argument("--rounds", type=int, default=None,
                             help="total rounds to reach (default: the "
                                  "recorded plan)")

    args = parser.parse_args(argv)
    recipe_override = None
    if getattr(args, "recipe", None):
        recipe_override = RunRecipe(
            target=args.recipe,
            kwargs=json.loads(args.recipe_kwargs) if args.recipe_kwargs else {},
        )
    try:
        with RunLedger(args.ledger, create=False) as ledger:
            if args.command == "list":
                return _list(ledger)
            if args.command == "show":
                return _show(ledger, args.run_id)
            if args.command == "verify":
                return _verify(args.ledger, ledger, args.run_id,
                               args.executor_mode, recipe_override, args.json)
            return _resume(args.ledger, ledger, args.run_id,
                           args.executor_mode, recipe_override, args.rounds)
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
