"""End-to-end federated training simulation.

:class:`FederatedSimulation` wires together the substrates: a client
partition (who holds what), a synthetic data generator (what the samples look
like), the NumPy model stack, a pluggable client-selection strategy and the
FedVC-style server.  One instance reproduces one curve of Figures 2, 6 or 8:
construct it with a selector (random / greedy / Dubhe), call :meth:`run`, and
read the accuracy series from the returned :class:`TrainingHistory`.

The selector is duck-typed: anything with ``select(round_index)`` returning a
sequence of client indices works, so the Dubhe machinery in
:mod:`repro.core` plugs in without this module importing it (the paper calls
Dubhe "pluggable"; the code structure mirrors that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol, Sequence

import numpy as np

from ..core.config import resolve_runtime_dtype, resolve_shard_policy
from ..data.cohort import DatasetCache
from ..data.dataset import ArrayDataset
from ..data.distributions import emd, uniform_distribution
from ..data.partition import ClientPartition
from ..data.synthetic import SyntheticImageGenerator
from ..nn.module import Module
from .client import FederatedClient, LocalTrainingConfig
from .executor import LocalUpdateExecutor
from .history import RoundRecord, TrainingHistory
from .server import EVAL_BACKENDS, FederatedServer

__all__ = ["ClientSelectorProtocol", "FederatedConfig", "FederatedSimulation"]


class ClientSelectorProtocol(Protocol):
    """Anything that can pick the participating clients of a round."""

    def select(self, round_index: int) -> Sequence[int]:  # pragma: no cover - protocol
        """Return the indices of the clients participating in this round."""
        ...


@dataclass(frozen=True)
class FederatedConfig:
    """Top-level configuration of a federated run.

    ``executor_mode`` selects the local-update back-end
    (``"sequential"``/``"thread"``/``"process"``/``"vectorized"``/
    ``"parallel"``; see :class:`repro.federated.LocalUpdateExecutor`).
    ``num_workers`` / ``shard_policy`` / ``scheduler_timeout`` configure the
    ``"parallel"`` mode's multi-cohort scheduler (worker-process count,
    defaulting to one per core; client→shard assignment, see
    :data:`repro.core.config.SHARD_POLICIES`; and the per-round worker-reply
    deadline in seconds — raise it for genuinely long local updates,
    ``None`` waits forever).  ``dataset_cache_size``
    bounds the shared LRU pool of materialised client datasets; ``None``
    disables pooling (each client pins its own data forever, the pre-cache
    behaviour).  ``dtype`` is the cohort-runtime precision knob
    (:data:`repro.core.config.RUNTIME_DTYPES`): ``"float64"`` (default)
    reproduces sequential execution bit-for-bit, ``"float32"`` is the
    cohort-only fast path with single-precision tolerance.
    ``eval_backend`` picks the server's test pass
    (``"batched"``/``"sequential"``, identical metrics; see
    :class:`repro.federated.FederatedServer`).

    Example
    -------
    >>> config = FederatedConfig(rounds=5, executor_mode="parallel",
    ...                          num_workers=2, seed=0)
    >>> config.shard_policy
    'contiguous'
    """

    rounds: int = 20
    eval_every: int = 1
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    executor_mode: str = "sequential"
    dataset_cache_size: Optional[int] = 1024
    dtype: str = "float64"
    eval_backend: str = "batched"
    num_workers: Optional[int] = None
    shard_policy: str = "contiguous"
    scheduler_timeout: Optional[float] = 120.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ValueError("rounds must be positive")
        if self.eval_every < 1:
            raise ValueError("eval_every must be positive")
        if self.dataset_cache_size is not None and self.dataset_cache_size < 1:
            raise ValueError("dataset_cache_size must be positive when given")
        resolved = resolve_runtime_dtype(self.dtype)
        if resolved != np.dtype("float64") and self.executor_mode not in (
                "vectorized", "parallel"):
            raise ValueError(
                "dtype='float32' is the cohort fast path and requires "
                "executor_mode='vectorized' or 'parallel'"
            )
        if self.num_workers is not None:
            if self.num_workers < 1:
                raise ValueError("num_workers must be positive when given")
            if self.executor_mode != "parallel":
                raise ValueError(
                    "num_workers configures the parallel scheduler; it "
                    "requires executor_mode='parallel'"
                )
        resolve_shard_policy(self.shard_policy)
        if self.shard_policy != "contiguous" and self.executor_mode != "parallel":
            raise ValueError(
                "shard_policy configures the parallel scheduler; it "
                "requires executor_mode='parallel'"
            )
        if self.scheduler_timeout is not None and self.scheduler_timeout <= 0:
            raise ValueError("scheduler_timeout must be positive (or None)")
        if self.eval_backend not in EVAL_BACKENDS:
            raise ValueError(f"eval_backend must be one of {EVAL_BACKENDS}")


class FederatedSimulation:
    """Simulate federated training with a pluggable client-selection strategy.

    Example
    -------
    >>> from repro import (FederatedConfig, FederatedSimulation,
    ...                    quick_federation, make_uniform_test_set)
    >>> from repro.core import RandomSelector
    >>> from repro.nn.models import MLP
    >>> partition, generator = quick_federation(n_clients=20, seed=0)
    >>> sim = FederatedSimulation(
    ...     partition=partition, generator=generator,
    ...     model_factory=lambda: MLP(64, 10, hidden=(16,), seed=7),
    ...     selector=RandomSelector(partition.client_distributions(), 4, seed=0),
    ...     test_set=make_uniform_test_set(generator, samples_per_class=2, seed=1),
    ...     config=FederatedConfig(rounds=2, executor_mode="vectorized", seed=0),
    ... )
    >>> history = sim.run()
    >>> len(history)
    2
    """

    def __init__(self, partition: ClientPartition, generator: SyntheticImageGenerator,
                 model_factory: Callable[[], Module], selector: ClientSelectorProtocol,
                 test_set: ArrayDataset, config: Optional[FederatedConfig] = None):
        if partition.num_classes != generator.num_classes:
            raise ValueError("partition and generator disagree on the number of classes")
        self.partition = partition
        self.generator = generator
        self.selector = selector
        self.test_set = test_set
        self.config = config or FederatedConfig()
        self.server = FederatedServer(model_factory,
                                      eval_backend=self.config.eval_backend)
        self.executor = LocalUpdateExecutor(
            self.config.executor_mode,
            dtype=self.config.dtype,
            num_workers=self.config.num_workers,
            shard_policy=self.config.shard_policy,
            scheduler_timeout=self.config.scheduler_timeout,
        )
        self.dataset_cache = (
            None if self.config.dataset_cache_size is None
            else DatasetCache(self.config.dataset_cache_size)
        )
        self._uniform = uniform_distribution(partition.num_classes)
        self._clients: dict[int, FederatedClient] = {}
        self._rng = np.random.default_rng(self.config.seed)
        self.history = TrainingHistory()

    # -- client materialisation ----------------------------------------------------

    def client(self, index: int) -> FederatedClient:
        """The :class:`FederatedClient` for partition row *index* (cached, lazy data)."""
        if index not in self._clients:
            counts = self.partition.client_class_counts[index]
            data_seed = (0 if self.config.seed is None else self.config.seed) + 100_003 * index

            def factory(counts=counts, data_seed=data_seed) -> ArrayDataset:
                return self.generator.generate(counts, rng=np.random.default_rng(data_seed))

            self._clients[index] = FederatedClient(
                client_id=index,
                num_classes=self.partition.num_classes,
                dataset_factory=factory,
                seed=data_seed,
                cache=self.dataset_cache,
            )
        return self._clients[index]

    # -- round loop -------------------------------------------------------------------

    def run_round(self, round_index: int) -> RoundRecord:
        """Run one complete round: select, train locally, aggregate, evaluate."""
        selected = list(self.selector.select(round_index))
        if len(selected) == 0:
            raise RuntimeError(f"selector returned no clients at round {round_index}")
        population = self.partition.selection_population(selected)
        bias = emd(population, self._uniform)

        clients = [self.client(k) for k in selected]
        # read-only views: every executor back-end copies the state on load,
        # so one shared global state serves all K workers without K deep copies
        global_state = self.server.global_state(copy=False)
        states = self.executor.run_round(
            clients, self.server.new_client_model, global_state, self.config.local,
            round_index=round_index,
        )
        self.server.aggregate(states)

        accuracy: Optional[float] = None
        if round_index % self.config.eval_every == 0:
            accuracy = self.server.evaluate(self.test_set)["accuracy"]

        record = RoundRecord(
            round_index=round_index,
            selected_clients=tuple(selected),
            population_distribution=population,
            population_bias=bias,
            test_accuracy=accuracy,
        )
        self.history.append(record)
        return record

    def run(self, rounds: Optional[int] = None, progress: Optional[Callable[[RoundRecord], None]] = None,
            ) -> TrainingHistory:
        """Run the full federated training loop and return the history."""
        total = rounds if rounds is not None else self.config.rounds
        if total < 1:
            raise ValueError("rounds must be positive")
        for t in range(total):
            record = self.run_round(t)
            if progress is not None:
                progress(record)
        return self.history

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release round-persistent runtime state (idempotent).

        Shuts down the parallel scheduler's worker processes (if the run
        used ``executor_mode="parallel"``) and drops the server's cached
        batched evaluator.  The simulation stays usable — the next round
        simply rebuilds what it needs — so this is about not leaking worker
        processes past the simulation's useful life.  Simulations also work
        as context managers: ``with FederatedSimulation(...) as sim: ...``.
        """
        self.executor.close()
        self.server.close()

    def __enter__(self) -> "FederatedSimulation":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
