"""Streaming secure registration ≡ the monolithic round, bit-identically.

``SecureRegistrationRound.run_stream`` must be a pure re-chunking of
``run()``: same decrypted overall registry, same per-client registration
indices, same message accounting — for the per-component path, the packed
(count-packing) path, and the tree-aggregation server alike.  The suite
also pins down the streaming-specific API contract: iterable inputs,
``total_clients`` headroom validation, overrun/empty-stream errors, and the
O(log N) fold depth.
"""

import numpy as np
import pytest

from repro.core.config import DubheConfig
from repro.core.secure import (
    SecureRegistrationRound,
    StreamedRegistration,
    iter_distribution_batches,
)

N_CLIENTS = 23


@pytest.fixture(scope="module")
def config():
    return DubheConfig(num_classes=6, reference_set=(1, 2, 6),
                       thresholds={1: 0.6, 2: 0.1, 6: 0.0},
                       participants_per_round=5, key_size=64,
                       registration_batch_size=7)


@pytest.fixture(scope="module")
def distributions(config):
    rng = np.random.default_rng(17)
    return rng.dirichlet(np.full(config.num_classes, 0.4), size=N_CLIENTS)


def run_both(config, distributions, **kwargs):
    overall, registrations, stats = SecureRegistrationRound(
        config, **kwargs).run(distributions)
    streamed = SecureRegistrationRound(config, **kwargs).run_stream(
        distributions)
    return overall, registrations, stats, streamed


class TestStreamEqualsRun:
    @pytest.mark.parametrize("kwargs", [
        {},
        {"packed": True},
        {"aggregation": "tree", "arity": 3},
        {"packed": True, "aggregation": "tree"},
    ], ids=["per-component", "packed", "tree", "packed-tree"])
    def test_overall_and_indices_identical(self, config, distributions,
                                           kwargs):
        overall, registrations, stats, streamed = run_both(
            config, distributions, **kwargs)
        assert isinstance(streamed, StreamedRegistration)
        np.testing.assert_array_equal(streamed.overall, overall)
        assert streamed.overall.sum() == N_CLIENTS
        assert streamed.n_clients == N_CLIENTS
        assert streamed.registration.indices.tolist() == \
            [r.index for r in registrations]
        assert streamed.registration.blocks.tolist() == \
            [r.block for r in registrations]
        # identical message accounting: N uploads seen by client and server
        # sides plus N aggregate syncs
        assert streamed.stats.messages == stats.messages == 3 * N_CLIENTS
        assert streamed.stats.plaintext_bytes == stats.plaintext_bytes

    def test_batching_is_invisible(self, config, distributions):
        """Any chunking of the same clients produces the same result."""
        baseline = SecureRegistrationRound(config).run_stream(distributions)
        for batch_size in (1, 4, N_CLIENTS, 100):
            chunks = iter_distribution_batches(distributions, batch_size)
            streamed = SecureRegistrationRound(config).run_stream(
                chunks, total_clients=N_CLIENTS)
            np.testing.assert_array_equal(streamed.overall, baseline.overall)
            np.testing.assert_array_equal(streamed.registration.indices,
                                          baseline.registration.indices)

    def test_num_batches_follows_config(self, config, distributions):
        streamed = SecureRegistrationRound(config).run_stream(distributions)
        assert streamed.num_batches == -(-N_CLIENTS // 7)

    def test_precompute_noise_stream(self, config, distributions):
        streamed = SecureRegistrationRound(
            config, packed=True, precompute_noise=True).run_stream(
            distributions)
        reference = SecureRegistrationRound(config).run_stream(distributions)
        np.testing.assert_array_equal(streamed.overall, reference.overall)
        assert streamed.stats.noise_precompute_seconds > 0.0


class TestFoldDepth:
    def test_flat_depth_is_linear(self, config, distributions):
        streamed = SecureRegistrationRound(config).run_stream(distributions)
        assert streamed.fold_depth == N_CLIENTS - 1

    def test_tree_depth_is_logarithmic(self, config):
        rng = np.random.default_rng(3)
        n = 64
        distributions = rng.dirichlet(np.full(config.num_classes, 0.4), size=n)
        streamed = SecureRegistrationRound(
            config, aggregation="tree").run_stream(distributions)
        assert streamed.fold_depth == 6  # 64 = 2^6 → a perfect binary tree
        assert streamed.fold_depth < n - 1


class TestStreamContract:
    def test_iterable_with_ragged_chunks(self, config, distributions):
        def ragged():
            yield distributions[:1]
            yield distributions[1:1]  # empty chunks are skipped, not counted
            yield distributions[1:20]
            yield distributions[20:]

        streamed = SecureRegistrationRound(config).run_stream(
            ragged(), total_clients=N_CLIENTS)
        reference = SecureRegistrationRound(config).run_stream(distributions)
        np.testing.assert_array_equal(streamed.overall, reference.overall)
        assert streamed.num_batches == 3

    def test_packed_iterable_requires_total_clients(self, config,
                                                    distributions):
        chunks = iter_distribution_batches(distributions, 8)
        with pytest.raises(ValueError, match="total_clients"):
            SecureRegistrationRound(config, packed=True).run_stream(chunks)

    def test_overrunning_total_clients_is_an_error(self, config,
                                                   distributions):
        chunks = iter_distribution_batches(distributions, 8)
        with pytest.raises(ValueError, match="more than total_clients"):
            SecureRegistrationRound(config).run_stream(
                chunks, total_clients=N_CLIENTS - 1)

    def test_empty_stream_is_an_error(self, config):
        with pytest.raises(ValueError, match="no client distributions"):
            SecureRegistrationRound(config).run_stream(iter([]))

    def test_invalid_inputs_rejected(self, config, distributions):
        round_ = SecureRegistrationRound(config)
        with pytest.raises(ValueError, match="2-D"):
            round_.run_stream(distributions[0])
        with pytest.raises(ValueError, match="shape"):
            round_.run_stream(iter([distributions[:, :3]]),
                              total_clients=N_CLIENTS)
        with pytest.raises(ValueError, match="total_clients"):
            round_.run_stream(distributions, total_clients=0)

    def test_invalid_round_configuration(self, config):
        with pytest.raises(ValueError):
            SecureRegistrationRound(config, aggregation="ring")
        with pytest.raises(ValueError):
            SecureRegistrationRound(config, arity=1)
