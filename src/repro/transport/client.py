"""The asyncio client peer: a :class:`~repro.federated.client.FederatedClient`
behind a socket.

:class:`TransportClient` is the remote half of the service layer: it owns one
local :class:`~repro.federated.client.FederatedClient` (the dataset and the
deterministic local trainer) plus a model factory, connects to a
:class:`~repro.transport.server.SocketTransport` with capped, jittered
backoff (:class:`~repro.core.retry.RetryPolicy`), registers, and then serves
the protocol loop — every :class:`~repro.transport.messages.SelectionNotice`
is answered with a locally trained
:class:`~repro.transport.messages.ModelDelta` until the server says
:class:`~repro.transport.messages.Shutdown`.

Fault tolerance
---------------
The client is built to survive a flaky link and a crashing server:

* **reconnection** — a lost connection (anything short of a ``Shutdown``)
  triggers a reconnect loop under the same backoff policy, re-registering
  with the **session token** from the last
  :class:`~repro.transport.messages.RegisterAck` so the server resumes the
  session instead of treating the peer as a stranger;
* **training survives disconnects** — local training runs in a worker
  thread off the read loop, so :class:`~repro.transport.messages.Heartbeat`
  probes are answered mid-training and a connection loss never cancels
  work in progress.  Finished deltas are cached per round: when the server
  replays an in-flight ``SelectionNotice`` after a reconnect, the cached
  delta is resent *without retraining* — and the server's
  ``(round, client, token)`` dedup guarantees it aggregates exactly once;
* **graceful exhaustion** — if the server never comes back the reconnect
  loop gives up after the policy's attempts, records :attr:`last_error`,
  and returns instead of raising into the owning thread.

Because :meth:`FederatedClient.local_train` seeds its data loader purely from
``(client seed, round_index)`` and starts from the broadcast global state, a
remote update is bit-identical to the one the in-process executor would have
produced — the property the loopback tests assert end-to-end.

``delay`` / ``delay_round`` simulate a straggler: the client sleeps before
training, so a server-side ``round_timeout`` turns it into a real
``"straggler"`` partial round (the transport-smoke CI path).
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Iterable, Optional, Set, Tuple

import numpy as np

from ..core.retry import RetryPolicy
from ..federated.client import FederatedClient
from ..nn.module import Module
from .messages import (
    ErrorNotice,
    Heartbeat,
    HeartbeatAck,
    ModelDelta,
    PackedCiphertextUpload,
    ProbabilityBroadcast,
    Register,
    RegisterAck,
    RoundResult,
    SelectionNotice,
    Shutdown,
    encode_message,
)
from .server import TransportError, _read_message

__all__ = ["TransportClient"]

StateDict = Dict[str, np.ndarray]


class TransportClient:
    """One federated client served over a TCP connection.

    Parameters mirror the server's :class:`~repro.core.config.TransportConfig`
    knobs where they matter client-side: ``retries`` / ``backoff`` /
    ``max_backoff`` / ``jitter`` govern the connect *and* reconnect loops
    through a :class:`~repro.core.retry.RetryPolicy` seeded with the client
    id (each fleet member jitters differently — no thundering herd);
    ``max_frame_bytes`` caps inbound frames.  ``reconnect=False`` restores
    the fail-fast behaviour: any disconnect ends :meth:`run`.

    Example
    -------
    >>> # server side: transport = SocketTransport(...); transport.start()
    >>> # client side (its own thread or process):
    >>> # TransportClient(client, model_factory, *transport.address).run()
    >>> TransportClient.__name__
    'TransportClient'
    """

    def __init__(self, client: FederatedClient,
                 model_factory: Callable[[], Module],
                 host: str, port: int,
                 retries: int = 5, backoff: float = 0.05,
                 max_backoff: float = 2.0, jitter: float = 0.1,
                 reconnect: bool = True,
                 max_frame_bytes: int = 1 << 28,
                 delay: float = 0.0, delay_round: Optional[int] = None,
                 uploads: Optional[Iterable[Tuple[str, object]]] = None):
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.client = client
        self.model_factory = model_factory
        self.host = host
        self.port = port
        #: capped, jittered backoff schedule for (re)connect attempts
        self.policy = RetryPolicy(retries=retries, backoff=backoff,
                                  max_backoff=max_backoff, jitter=jitter,
                                  seed=int(client.client_id))
        self.reconnect = reconnect
        self.max_frame_bytes = max_frame_bytes
        self.delay = delay
        self.delay_round = delay_round
        #: ``(tag, PackedEncryptedVector)`` pairs sent right after Register
        self.uploads = list(uploads or [])
        #: cohort position assigned by the server's RegisterAck
        self.position: Optional[int] = None
        #: session token issued by the server (echoed on reconnects/deltas)
        self.token = ""
        #: how many times this client reconnected after losing the link
        self.reconnects = 0
        #: how many registrations the server answered with ``resumed=True``
        self.sessions_resumed = 0
        #: the last ProbabilityBroadcast received (round_index, probabilities)
        self.last_probabilities: Optional[Tuple[int, Tuple[float, ...]]] = None
        #: every RoundResult received, in order
        self.round_results: "list[RoundResult]" = []
        #: rounds this client actually trained for (each at most once)
        self.rounds_trained: "list[int]" = []
        #: why the server rejected us (or why reconnection gave up)
        self.last_error: Optional[str] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._write_lock: Optional[asyncio.Lock] = None
        self._delta_cache: "Dict[int, StateDict]" = {}
        self._training: "Set[int]" = set()
        self._tasks: "Set[asyncio.Task]" = set()
        self._shutdown = False

    # -- compatibility accessors -------------------------------------------------

    @property
    def retries(self) -> int:
        """Connect retries granted after the first attempt.

        Example
        -------
        >>> TransportClient.retries.__doc__ is not None
        True
        """
        return self.policy.retries

    @property
    def backoff(self) -> float:
        """Base backoff (seconds) of the connect schedule.

        Example
        -------
        >>> TransportClient.backoff.__doc__ is not None
        True
        """
        return self.policy.backoff

    # -- the protocol loop -------------------------------------------------------

    def run(self) -> None:
        """Serve the full protocol loop (blocking; run it on its own thread).

        Connects (with capped, jittered retries), registers, ships any
        queued encrypted uploads, then answers selection notices until
        shutdown.  A mid-run disconnect triggers reconnection and session
        resumption; only exhausted reconnect attempts (recorded in
        :attr:`last_error`) or a ``Shutdown`` end the loop.

        Example
        -------
        >>> # TransportClient(client, make_model, "127.0.0.1", 9999).run()
        >>> hasattr(TransportClient, "run")
        True
        """
        asyncio.run(self._run_async())

    async def _run_async(self) -> None:
        self._shutdown = False
        self._write_lock = asyncio.Lock()
        first_attempt = True
        while not self._shutdown:
            try:
                reader, writer = await self._connect()
            except TransportError as exc:
                if first_attempt:
                    raise  # initial connect failure is a caller error
                self.last_error = f"reconnect exhausted: {exc}"
                break
            if not first_attempt:
                self.reconnects += 1
            first_attempt = False
            self._writer = writer
            try:
                await self._send(Register(
                    client_id=self.client.client_id,
                    num_classes=self.client.num_classes,
                    num_samples=int(self.client.num_samples),
                    token=self.token,
                ))
                for tag, vector in self.uploads:
                    await self._send(PackedCiphertextUpload(
                        client_id=self.client.client_id, tag=tag,
                        vector=vector))
                while True:
                    message = await _read_message(reader, self.max_frame_bytes)
                    if isinstance(message, Shutdown):
                        self._shutdown = True
                        break
                    await self._handle(message)
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                pass  # link lost; fall through to reconnect (or give up)
            finally:
                self._writer = None
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            if not self.reconnect:
                break
        # shutdown (or giving up) makes any in-flight training moot
        for task in list(self._tasks):
            if not task.done():
                task.cancel()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)

    async def _connect(self):
        last_error: Optional[Exception] = None
        for attempt in range(self.policy.attempts):
            try:
                return await asyncio.open_connection(self.host, self.port)
            except (ConnectionError, OSError) as exc:
                last_error = exc
                if attempt < self.policy.retries:
                    await asyncio.sleep(self.policy.delay(attempt))
        raise TransportError(
            f"could not connect to {self.host}:{self.port} after "
            f"{self.policy.attempts} attempts: {last_error}"
        )

    async def _send(self, message) -> bool:
        """Write one frame to the *current* connection (``False`` if gone).

        Serialised by a lock so the read loop's acks and a training task's
        delta never interleave mid-frame.
        """
        writer = self._writer
        if writer is None:
            return False
        assert self._write_lock is not None
        async with self._write_lock:
            try:
                writer.write(encode_message(message))
                await writer.drain()
            except (ConnectionError, OSError):
                return False
        return True

    async def _handle(self, message) -> None:
        if isinstance(message, RegisterAck):
            self.position = message.position
            self.token = message.token
            if message.resumed:
                self.sessions_resumed += 1
        elif isinstance(message, Heartbeat):
            await self._send(HeartbeatAck(message.seq))
        elif isinstance(message, ProbabilityBroadcast):
            self.last_probabilities = (message.round_index,
                                       message.probabilities)
        elif isinstance(message, SelectionNotice):
            # train off the read loop: heartbeats keep getting answered and
            # a disconnect mid-training never cancels the work
            task = asyncio.ensure_future(self._train_and_reply(message))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)
        elif isinstance(message, RoundResult):
            self.round_results.append(message)
            # the round is closed on the server: cached deltas for it (and
            # earlier rounds) can never be asked for again
            for round_index in [r for r in self._delta_cache
                                if r <= message.round_index]:
                del self._delta_cache[round_index]
        elif isinstance(message, ErrorNotice):
            self.last_error = message.detail
        # Register/uploads/deltas are client→server only; ignore echoes

    async def _train_and_reply(self, notice: SelectionNotice) -> None:
        round_index = notice.round_index
        if round_index in self._delta_cache:
            # a replayed notice after reconnection: resend, don't retrain
            await self._send_delta(round_index)
            return
        if round_index in self._training:
            return  # already training; the in-flight task will reply
        self._training.add(round_index)
        try:
            if self.delay > 0 and (self.delay_round is None
                                   or self.delay_round == round_index):
                await asyncio.sleep(self.delay)
            loop = asyncio.get_running_loop()
            state = await loop.run_in_executor(None, self._train, notice)
            self._delta_cache[round_index] = state
            if round_index not in self.rounds_trained:
                self.rounds_trained.append(round_index)
        finally:
            self._training.discard(round_index)
        await self._send_delta(round_index)

    def _train(self, notice: SelectionNotice) -> StateDict:
        model = self.model_factory()
        model.load_state_dict(dict(notice.state))
        return self.client.local_train(model, notice.config,
                                       round_index=notice.round_index)

    async def _send_delta(self, round_index: int) -> None:
        await self._send(ModelDelta(
            round_index=round_index,
            client_id=self.client.client_id,
            state=self._delta_cache[round_index],
            token=self.token,
        ))
