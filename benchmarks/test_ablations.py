"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not figures of the paper; they probe the knobs the paper fixes and
justify the choices the reproduction inherits:

* **reference set** — the paper uses G = {1, 2, 10} for the 10-class tasks.
  How much of Dubhe's balancing comes from the pair block (i = 2)?
* **registration thresholds** — the paper's searched optimum is σ₁ = 0.7,
  σ₂ = 0.1.  How sensitive is the population bias to that choice?
* **aggregation rule** — the paper adopts FedVC's uniform averaging (eq. 1);
  compare against classical sample-weighted FedAvg on equal-size clients
  (they must coincide) to validate the implementation.
* **registry sparsity vs client count** — §6.3.3 argues sparsity "can be
  alleviated with the increase of total number of clients"; measure it.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import print_table
from repro.core import DubheConfig, DubheSelector, RandomSelector
from repro.data import EMDTargetPartitioner, half_normal_class_proportions
from repro.federated.aggregation import average_states, weighted_average_states

RHO = 10.0
EMD_AVG = 1.5
K = 20
ROUNDS = 40


def _federation(n_clients: int, seed: int = 20):
    global_dist = half_normal_class_proportions(10, RHO)
    partition = EMDTargetPartitioner(n_clients, 128, EMD_AVG, seed=seed).partition(global_dist)
    return partition.client_distributions()


def _mean_bias(selector, rounds: int = ROUNDS) -> float:
    return float(np.mean([selector.bias_of(selector.select(r)) for r in range(rounds)]))


@pytest.mark.benchmark(group="ablation")
def test_ablation_reference_set(benchmark):
    """G = {1, 10} vs {1, 2, 10} vs {1, 2, 3, 10}: the pair block matters."""
    distributions = _federation(500)

    def experiment():
        results = {}
        for ref, thresholds in (
            ((1, 10), {1: 0.7, 10: 0.0}),
            ((1, 2, 10), {1: 0.7, 2: 0.1, 10: 0.0}),
            ((1, 2, 3, 10), {1: 0.7, 2: 0.2, 3: 0.1, 10: 0.0}),
        ):
            config = DubheConfig(num_classes=10, reference_set=ref, thresholds=thresholds,
                                 participants_per_round=K, seed=21)
            results[ref] = _mean_bias(DubheSelector(distributions, config, seed=21))
        results["random"] = _mean_bias(RandomSelector(distributions, K, seed=21))
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Ablation: reference set G", [
        {"reference_set": str(ref), "mean_bias": round(bias, 4)}
        for ref, bias in results.items()
    ])

    # any Dubhe variant beats random; the paper's G is not worse than the
    # single-class-only variant
    for ref in ((1, 10), (1, 2, 10), (1, 2, 3, 10)):
        assert results[ref] < results["random"]
    assert results[(1, 2, 10)] <= results[(1, 10)] + 0.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_threshold_sensitivity(benchmark):
    """Population bias as a function of the σ₁ threshold (σ₂ fixed at 0.1)."""
    distributions = _federation(500)

    def experiment():
        results = {}
        for sigma1 in (0.3, 0.5, 0.7, 0.9):
            config = DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                                 thresholds={1: sigma1, 2: 0.1, 10: 0.0},
                                 participants_per_round=K, seed=22)
            results[sigma1] = _mean_bias(DubheSelector(distributions, config, seed=22))
        results["random"] = _mean_bias(RandomSelector(distributions, K, seed=22))
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Ablation: σ₁ sensitivity (σ₂ = 0.1)", [
        {"sigma1": s, "mean_bias": round(b, 4)} for s, b in results.items()
    ])
    # every threshold choice in the sensible range still beats random — the
    # parameter search refines, it is not load-bearing for the main claim
    for sigma1 in (0.3, 0.5, 0.7, 0.9):
        assert results[sigma1] < results["random"]


@pytest.mark.benchmark(group="ablation")
def test_ablation_aggregation_rules(benchmark):
    """Uniform (eq. 1) and sample-weighted FedAvg coincide for equal-size clients."""
    rng = np.random.default_rng(23)
    states = [{"w": rng.normal(size=(8, 4)), "b": rng.normal(size=4)} for _ in range(10)]

    def experiment():
        uniform = average_states(states)
        weighted_equal = weighted_average_states(states, [128] * len(states))
        weighted_skewed = weighted_average_states(states, list(range(1, len(states) + 1)))
        return uniform, weighted_equal, weighted_skewed

    uniform, weighted_equal, weighted_skewed = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    for key in uniform:
        np.testing.assert_allclose(uniform[key], weighted_equal[key], atol=1e-12)
    # but the two rules genuinely differ once client sizes differ
    assert any(
        not np.allclose(uniform[key], weighted_skewed[key]) for key in uniform
    )
    print("\nAblation: eq. (1) uniform averaging == weighted FedAvg for equal-size "
          "virtual clients (validated); they diverge for unequal sizes (validated).")


@pytest.mark.benchmark(group="ablation")
def test_ablation_registry_sparsity_vs_clients(benchmark):
    """§6.3.3: more clients → fewer never-dominated classes → lower bias."""

    def experiment():
        rows = []
        for n_clients in (100, 500, 2000):
            distributions = _federation(n_clients, seed=24)
            config = DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                                 thresholds={1: 0.7, 2: 0.1, 10: 0.0},
                                 participants_per_round=K, seed=24)
            selector = DubheSelector(distributions, config, seed=24)
            single = selector.overall_registry[selector.codebook.block_slice(1)]
            pair = selector.overall_registry[selector.codebook.block_slice(2)]
            dominated = single.copy()
            for j, category in enumerate(selector.codebook.block_categories(2)):
                for c in category:
                    dominated[c] += pair[j]
            rows.append({
                "n_clients": n_clients,
                "never_dominated_classes": int(np.sum(dominated == 0)),
                "mean_bias": round(_mean_bias(selector, rounds=20), 4),
            })
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table("Ablation: registry sparsity vs total client count (§6.3.3)", rows)

    sparsity = [row["never_dominated_classes"] for row in rows]
    assert sparsity[-1] <= sparsity[0]
    assert rows[-1]["mean_bias"] <= rows[0]["mean_bias"] + 0.05
