#!/usr/bin/env python
"""Quickstart: Dubhe client selection on a skewed synthetic federation.

This example walks through the whole public API in a couple of minutes of CPU
time:

1. build a skewed federation (global imbalance ratio ρ = 10, average client
   discrepancy EMD_avg = 1.5 — the paper's hardest setting);
2. run the parameter search to settle the registration thresholds;
3. compare the population bias ``||p_o − p_u||₁`` of random, greedy and Dubhe
   selection;
4. run a short federated training with each selector and report accuracy.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    DubheConfig,
    DubheSelector,
    FederatedConfig,
    GreedySelector,
    LocalTrainingConfig,
    RandomSelector,
    Session,
    make_uniform_test_set,
    quick_federation,
    search_thresholds,
)
from repro.nn.models import MLP


def main() -> None:
    # ------------------------------------------------------------------ setup
    n_clients, k = 120, 12
    partition, generator = quick_federation(
        n_clients=n_clients, samples_per_client=32, rho=10.0, emd_avg=1.5, seed=0
    )
    distributions = partition.client_distributions()
    print("Federation statistics")
    print(f"  clients            : {partition.n_clients}")
    print(f"  imbalance ratio ρ  : {partition.achieved_rho():.2f}")
    print(f"  EMD_avg            : {partition.achieved_emd_avg():.3f}")

    # -------------------------------------------------- Dubhe parameter search
    unsettled = DubheConfig(
        num_classes=10, reference_set=(1, 2, 10),
        participants_per_round=k, tentative_selections=5, seed=0,
    )
    search = search_thresholds(distributions, unsettled, sigma_grid=(0.1, 0.3, 0.5, 0.7), seed=0)
    print("\nParameter search")
    print(f"  settled thresholds : {search.thresholds}")
    print(f"  ||E(p_o) − p_u||₁  : {search.score:.4f}")

    # -------------------------------------------------------- selection bias
    selectors = {
        "random": RandomSelector(distributions, k, seed=1),
        "greedy": GreedySelector(distributions, k, seed=1),
        "dubhe": DubheSelector(distributions, search.config, seed=1),
    }
    print("\nPopulation bias ||p_o − p_u||₁ over 50 selections")
    for name, selector in selectors.items():
        biases = [selector.bias_of(selector.select(r)) for r in range(50)]
        print(f"  {name:<7}: mean={np.mean(biases):.4f}  std={np.std(biases):.4f}")

    # -------------------------------------------------------- short training
    test_set = make_uniform_test_set(generator, samples_per_class=20, seed=2)
    print("\nFederated training (10 rounds, MLP, reduced scale)")
    for name in ("random", "dubhe"):
        selector = (
            RandomSelector(distributions, k, seed=3)
            if name == "random"
            else DubheSelector(distributions, search.config, seed=3)
        )
        session = Session(
            FederatedConfig(
                rounds=10,
                eval_every=1,
                local=LocalTrainingConfig(batch_size=8, local_epochs=1, learning_rate=3e-3),
                # cohort back-end: trains all K clients as one batched tensor
                # program; bit-identical to (and several times faster than)
                # the default sequential loop
                executor_mode="vectorized",
                seed=3,
            ),
        ).with_federation(
            partition=partition,
            generator=generator,
            model_factory=lambda: MLP(64, 10, hidden=(32,), seed=7),
            selector=selector,
            test_set=test_set,
        )
        with session:
            history = session.run().history
        print(
            f"  {name:<7}: final accuracy={history.final_accuracy():.3f}  "
            f"mean round bias={history.mean_population_bias():.3f}"
        )


if __name__ == "__main__":
    main()
