"""Cohort stacking and pooled client-dataset generation.

Three pieces of plumbing for the vectorized (cohort) execution back-end:

* :class:`DatasetCache` — a bounded, thread-safe LRU pool of materialised
  client datasets keyed by client id.  Synthetic client data is generated
  deterministically from a per-client seed, so eviction is safe (a re-selected
  evicted client regenerates bit-identical data) while repeatedly-selected
  clients stop paying the generation cost every round.
* :func:`stack_cohort` — stack the K selected clients' datasets into one
  ``(K, N_vc, …)`` features array and ``(K, N_vc)`` labels array, the layout
  every batched kernel consumes.  Virtual clients all hold the same number of
  samples (the paper's FedVC convention), which is what makes the cohort a
  dense rectangular tensor; ragged cohorts raise :class:`CohortShapeError`
  and callers fall back to per-client execution.
* :class:`CohortBuffer` — the round-persistent variant of
  :func:`stack_cohort`: it owns the dense ``(K, N_vc, …)`` buffers across
  rounds and restacks only the slots whose selected client changed, so a
  stable (or slowly-rotating) selection pays the K-dataset memcpy once
  instead of every round.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Optional, Sequence

import numpy as np

from .dataset import ArrayDataset

__all__ = ["Cohort", "CohortBuffer", "CohortShapeError", "DatasetCache",
           "stack_cohort"]


class CohortShapeError(ValueError):
    """The client datasets cannot be stacked into one rectangular cohort."""


class DatasetCache:
    """A bounded LRU cache of materialised client datasets.

    Parameters
    ----------
    capacity:
        Maximum number of client datasets held at once.  The least recently
        *used* (selected) client is evicted first, so the hot set of
        frequently-selected clients stays resident while a federation of
        millions of clients keeps bounded memory.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, ArrayDataset] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable, factory: Callable[[], ArrayDataset]) -> ArrayDataset:
        """The cached dataset for *key*, materialising it via *factory* on miss."""
        with self._lock:
            dataset = self._entries.get(key)
            if dataset is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return dataset
            self.misses += 1
        # generate outside the lock: misses on distinct clients can overlap
        dataset = factory()
        with self._lock:
            self._entries[key] = dataset
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return dataset

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DatasetCache(size={len(self._entries)}/{self.capacity}, "
                f"hits={self.hits}, misses={self.misses})")


@dataclass(frozen=True)
class Cohort:
    """K clients' datasets stacked into dense ``(K, N_vc, …)`` arrays."""

    x: np.ndarray  #: features, shape ``(K, N_vc, *feature_shape)``
    y: np.ndarray  #: integer labels, shape ``(K, N_vc)``
    num_classes: int

    @property
    def clients(self) -> int:
        return self.x.shape[0]

    @property
    def samples_per_client(self) -> int:
        return self.x.shape[1]


def stack_cohort(datasets: Sequence[ArrayDataset]) -> Cohort:
    """Stack per-client datasets into one rectangular cohort.

    All datasets must hold the same number of samples with the same feature
    shape (the FedVC virtual-client invariant); otherwise
    :class:`CohortShapeError` is raised.
    """
    if not datasets:
        raise CohortShapeError("cannot stack an empty cohort")
    xs = [np.asarray(ds.x) for ds in datasets]
    ys = [np.asarray(ds.y) for ds in datasets]
    reference = xs[0].shape
    for k, x in enumerate(xs[1:], start=1):
        if x.shape != reference:
            raise CohortShapeError(
                f"client {k} has data shape {x.shape}, expected {reference}; "
                "ragged cohorts cannot be vectorized"
            )
    num_classes = max(ds.num_classes for ds in datasets)
    return Cohort(x=np.stack(xs), y=np.stack(ys), num_classes=num_classes)


class CohortBuffer:
    """Round-persistent ``(K, N_vc, …)`` stacking buffers with slot reuse.

    Where :func:`stack_cohort` allocates fresh dense arrays every round, a
    :class:`CohortBuffer` keeps them alive between rounds and tracks which
    dataset *object* currently occupies each client slot.  A slot whose
    selected client hands back the very same materialised dataset (memoised
    on the client, or resident in the shared :class:`DatasetCache`) skips its
    copy entirely; only slots whose selection changed — or whose dataset was
    evicted and regenerated — are restacked.  Slot datasets are pinned
    (referenced) while resident, so object identity is a sound freshness key.

    ``dtype`` is the feature-buffer precision: the cohort fast path casts
    client features once, on the copy into the buffer, instead of per batch.
    Labels always stay integral.

    ``arrays`` pins the buffer to preallocated backing storage instead of
    letting it allocate lazily — the multi-cohort scheduler passes
    process-shared ``(K, N_vc, …)`` pools here so the parent restacks
    straight into memory its worker processes can see.  An externally-backed
    buffer never reallocates: a round whose data shape does not match the
    backing arrays raises :class:`CohortShapeError` (the scheduler treats
    that as a geometry change and rebuilds its pools).

    Example
    -------
    >>> import numpy as np
    >>> from repro.data.dataset import ArrayDataset
    >>> ds = ArrayDataset(np.zeros((4, 2)), np.zeros(4, dtype=int), num_classes=2)
    >>> buffer = CohortBuffer(num_clients=2)
    >>> x, y = buffer.stack([("a", ds), ("b", ds)])
    >>> x.shape, buffer.restacked
    ((2, 4, 2), 2)
    >>> _ = buffer.stack([("a", ds), ("b", ds)])  # same slots: no copies
    >>> buffer.reused
    2
    """

    def __init__(self, num_clients: int, dtype: "str | np.dtype" = np.float64,
                 arrays: "Optional[tuple[np.ndarray, np.ndarray]]" = None):
        if num_clients < 1:
            raise ValueError("num_clients must be positive")
        self.num_clients = num_clients
        self.dtype = np.dtype(dtype)
        self.x: Optional[np.ndarray] = None
        self.y: Optional[np.ndarray] = None
        self._external = arrays is not None
        if arrays is not None:
            x, y = arrays
            if x.shape[0] != num_clients or y.shape != x.shape[:2]:
                raise ValueError(
                    f"backing arrays disagree with num_clients={num_clients}: "
                    f"x{x.shape}, y{y.shape}"
                )
            self.x = x
            self.y = y
        self._slot_keys: list[Optional[Hashable]] = [None] * num_clients
        self._slot_pins: list[Optional[ArrayDataset]] = [None] * num_clients
        #: how many times the dense buffers were (re)allocated
        self.allocations = 0
        #: cumulative slots copied / skipped across all stack() calls
        self.restacked = 0
        self.reused = 0

    def stack(self, slots: Sequence[tuple[Hashable, ArrayDataset]],
              ) -> tuple[np.ndarray, np.ndarray]:
        """Bring the buffers up to date with *slots* and return ``(x, y)``.

        *slots* holds one ``(key, dataset)`` pair per client position (see
        :meth:`repro.federated.FederatedClient.cohort_slot`); the key must
        change whenever the dataset contents may have.  Ragged cohorts raise
        :class:`CohortShapeError` exactly like :func:`stack_cohort`.
        """
        if len(slots) != self.num_clients:
            raise CohortShapeError(
                f"expected {self.num_clients} cohort slots, got {len(slots)}"
            )
        datasets = [ds for _, ds in slots]
        reference = np.asarray(datasets[0].x).shape
        for k, ds in enumerate(datasets[1:], start=1):
            if np.asarray(ds.x).shape != reference:
                raise CohortShapeError(
                    f"client {k} has data shape {np.asarray(ds.x).shape}, expected "
                    f"{reference}; ragged cohorts cannot be vectorized"
                )
        shape = (self.num_clients,) + reference
        if self._external and self.x.shape != shape:
            # external backing (process-shared pools) cannot be swapped from
            # here; the owner must rebuild its pools for the new geometry
            raise CohortShapeError(
                f"cohort data shape {shape} does not match the externally "
                f"backed buffers {self.x.shape}"
            )
        if self.x is None or self.x.shape != shape:
            self.x = np.empty(shape, dtype=self.dtype)
            self.y = np.empty(shape[:2], dtype=np.asarray(datasets[0].y).dtype)
            self._slot_keys = [None] * self.num_clients
            self._slot_pins = [None] * self.num_clients
            self.allocations += 1
        for k, (key, ds) in enumerate(slots):
            if self._slot_keys[k] == key and self._slot_pins[k] is ds:
                self.reused += 1
                continue
            self.x[k] = ds.x
            self.y[k] = ds.y
            self._slot_keys[k] = key
            self._slot_pins[k] = ds
            self.restacked += 1
        return self.x, self.y

    @property
    def samples_per_client(self) -> int:
        if self.x is None:
            raise RuntimeError("buffer not stacked yet")
        return self.x.shape[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "empty" if self.x is None else f"x{self.x.shape}"
        return (f"CohortBuffer(clients={self.num_clients}, {state}, "
                f"allocations={self.allocations}, restacked={self.restacked}, "
                f"reused={self.reused})")
