"""Batched (forward-only) evaluation must reproduce the sequential test pass."""

import numpy as np
import pytest

from repro.data.synthetic import make_synthetic_mnist, make_uniform_test_set
from repro.federated.client import FederatedClient, LocalTrainingConfig
from repro.federated.executor import LocalUpdateExecutor
from repro.federated.server import FederatedServer
from repro.nn.layers import Linear
from repro.nn.metrics import BatchedEvaluator, evaluate_model
from repro.nn.models import MLP, MnistCNN
from repro.nn.module import Module


def mlp_factory():
    return MLP(64, 10, hidden=(16,), seed=11)


def cnn_factory():
    return MnistCNN(1, 8, 10, channels=(3, 5), hidden=12, dropout=0.25, seed=11)


@pytest.fixture(scope="module")
def test_set():
    return make_uniform_test_set(make_synthetic_mnist(seed=0),
                                 samples_per_class=20, seed=1)


def trained_server(factory, rounds=2):
    """A server whose global model has moved off its initialisation."""
    gen = make_synthetic_mnist(seed=0)
    clients = [
        FederatedClient(k, 10,
                        dataset=gen.generate([3] * 10, rng=np.random.default_rng(k)),
                        seed=500 + k)
        for k in range(4)
    ]
    server = FederatedServer(factory)
    executor = LocalUpdateExecutor("vectorized")
    for r in range(rounds):
        states = executor.run_round(clients, factory, server.global_state(),
                                    LocalTrainingConfig(learning_rate=1e-3),
                                    round_index=r)
        server.aggregate(states)
    return server


def assert_reports_equal(a, b):
    assert a["accuracy"] == b["accuracy"]
    assert a["n_samples"] == b["n_samples"]
    np.testing.assert_array_equal(a["confusion_matrix"], b["confusion_matrix"])
    np.testing.assert_array_equal(
        np.nan_to_num(a["per_class_accuracy"], nan=-1.0),
        np.nan_to_num(b["per_class_accuracy"], nan=-1.0),
    )


class TestBatchedEvaluator:
    @pytest.mark.parametrize("factory", [mlp_factory, cnn_factory],
                             ids=["mlp", "mnist_cnn"])
    def test_matches_sequential_loop(self, factory, test_set):
        server = trained_server(factory)
        evaluator = BatchedEvaluator(factory())
        evaluator.load_state(server.global_state(copy=False))
        batched = evaluator.evaluate(test_set)
        sequential = evaluate_model(server.global_model, test_set, batch_size=64)
        assert_reports_equal(batched, sequential)

    def test_chunking_does_not_change_predictions(self, test_set):
        server = trained_server(mlp_factory)
        state = server.global_state(copy=False)
        small = BatchedEvaluator(mlp_factory(), chunk_size=7)
        large = BatchedEvaluator(mlp_factory(), chunk_size=10_000)
        small.load_state(state)
        large.load_state(state)
        np.testing.assert_array_equal(small.predictions(test_set),
                                      large.predictions(test_set))

    def test_reusable_across_state_updates(self, test_set):
        # one evaluator tracks a moving global model (the round-persistent use)
        evaluator = BatchedEvaluator(mlp_factory())
        for rounds in (1, 2):
            server = trained_server(mlp_factory, rounds=rounds)
            evaluator.load_state(server.global_state(copy=False))
            reference = evaluate_model(server.global_model, test_set)
            assert evaluator.evaluate(test_set)["accuracy"] == reference["accuracy"]

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            BatchedEvaluator(mlp_factory(), chunk_size=0)

    def test_effective_chunk_bounded_by_element_budget(self):
        evaluator = BatchedEvaluator(mlp_factory(), chunk_size=2048)
        # narrow samples (benchmark MLP): full chunk
        assert evaluator._effective_chunk(64) == 2048
        # wide conv-stack samples shrink the chunk to bound im2col memory
        budget = BatchedEvaluator.CHUNK_ELEMENT_BUDGET
        assert evaluator._effective_chunk(3072) == budget // 3072
        assert evaluator._effective_chunk(10 * budget) == 1


class TestServerEvalBackend:
    def test_batched_and_sequential_backends_agree(self, test_set):
        batched = trained_server(mlp_factory)
        sequential = FederatedServer(mlp_factory, eval_backend="sequential")
        sequential.global_model.load_state_dict(batched.global_state())
        assert_reports_equal(batched.evaluate(test_set),
                             sequential.evaluate(test_set))
        assert batched.eval_fallback_reason is None

    def test_unvectorizable_model_falls_back(self, test_set):
        class Custom(Module):
            def __init__(self):
                self.lin = Linear(64, 10, seed=0)

            def forward(self, x):
                return self.lin(x.reshape(x.shape[0], -1))

            def backward(self, grad):
                return self.lin.backward(grad)

        server = FederatedServer(Custom)
        report = server.evaluate(test_set)
        assert server.eval_fallback_reason is not None
        reference = evaluate_model(server.global_model, test_set)
        assert_reports_equal(report, reference)

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError):
            FederatedServer(mlp_factory, eval_backend="gpu")
