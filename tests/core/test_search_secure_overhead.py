"""Tests for parameter search, the secure protocol and overhead accounting."""

import random

import numpy as np
import pytest

from repro.core.config import DubheConfig
from repro.core.overhead import communication_overhead, measure_encryption_overhead
from repro.core.parameter_search import default_sigma_grid, search_thresholds
from repro.core.registry import RegistryCodebook
from repro.core.secure import (
    SecureAggregationServer,
    SecureClient,
    SecureDistributionAggregation,
    SecureRegistrationRound,
)
from repro.crypto.keyagent import KeyAgent
from repro.crypto.paillier import generate_keypair
from repro.data.partition import EMDTargetPartitioner
from repro.data.skew import half_normal_class_proportions


@pytest.fixture(scope="module")
def federation_distributions():
    global_dist = half_normal_class_proportions(10, 10.0)
    partition = EMDTargetPartitioner(80, 64, 1.5, seed=0).partition(global_dist)
    return partition.client_distributions()


def unsettled_config(k=10, h=3):
    return DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                       participants_per_round=k, tentative_selections=h, seed=0)


class TestParameterSearch:
    def test_finds_thresholds_for_every_reference_entry(self, federation_distributions):
        result = search_thresholds(federation_distributions, unsettled_config(),
                                   sigma_grid=(0.1, 0.5, 0.9), seed=0)
        assert set(result.thresholds) == {1, 2, 10}
        assert result.thresholds[10] == 0.0
        assert result.config.has_all_thresholds()
        assert result.score >= 0

    def test_search_score_beats_worst_grid_point(self, federation_distributions):
        result = search_thresholds(federation_distributions, unsettled_config(),
                                   sigma_grid=(0.1, 0.5, 0.9), seed=0)
        assert result.score <= max(result.all_scores.values()) + 1e-9

    def test_monotone_threshold_constraint_respected(self, federation_distributions):
        result = search_thresholds(federation_distributions, unsettled_config(),
                                   sigma_grid=(0.3, 0.7), seed=0)
        for assignment in result.all_scores:
            assert all(assignment[j] >= assignment[j + 1] for j in range(len(assignment) - 1))

    def test_reference_set_with_only_c(self, federation_distributions):
        config = DubheConfig(num_classes=10, reference_set=(10,), participants_per_round=10)
        result = search_thresholds(federation_distributions, config, seed=0)
        assert result.thresholds == {10: 0.0}

    def test_invalid_inputs(self, federation_distributions):
        with pytest.raises(ValueError):
            search_thresholds(federation_distributions[:, :5], unsettled_config())
        with pytest.raises(ValueError):
            search_thresholds(federation_distributions, unsettled_config(), tries=0)
        with pytest.raises(ValueError):
            default_sigma_grid(())
        with pytest.raises(ValueError):
            default_sigma_grid((1.5,))

    def test_settled_config_improves_selection(self, federation_distributions):
        from repro.core.selectors import DubheSelector, RandomSelector

        result = search_thresholds(federation_distributions, unsettled_config(k=16),
                                   sigma_grid=(0.1, 0.3, 0.5, 0.7, 0.9), seed=0)
        dubhe = DubheSelector(federation_distributions, result.config, seed=1)
        rand = RandomSelector(federation_distributions, 16, seed=1)
        dubhe_bias = np.mean([dubhe.bias_of(dubhe.select(r)) for r in range(15)])
        random_bias = np.mean([rand.bias_of(rand.select(r)) for r in range(15)])
        assert dubhe_bias < random_bias


def settled_config(key_size=128, k=5, h=2):
    return DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                       thresholds={1: 0.7, 2: 0.1, 10: 0.0},
                       participants_per_round=k, tentative_selections=h,
                       key_size=key_size)


class TestSecureProtocol:
    def test_registration_round_matches_plaintext_aggregation(self, federation_distributions):
        subset = federation_distributions[:12]
        config = settled_config()
        agent = KeyAgent(key_size=128, rng=random.Random(0))
        overall, registrations, stats = SecureRegistrationRound(config, agent=agent).run(subset)
        codebook = RegistryCodebook(config)
        expected = codebook.aggregate(codebook.register_many(subset))
        np.testing.assert_allclose(overall, expected, atol=1e-6)
        assert len(registrations) == 12
        assert stats.messages > 0
        assert stats.ciphertext_bytes > stats.plaintext_bytes
        assert stats.encrypt_seconds > 0
        assert stats.decrypt_seconds > 0

    def test_server_never_holds_private_key(self):
        keypair = generate_keypair(128, rng=random.Random(1))
        server = SecureAggregationServer(keypair.public_key)
        # structural privacy check: no attribute of the server references the
        # private key and the server exposes no decryption capability
        assert not hasattr(server, "private_key")
        assert not any(
            "private" in attr or "secret" in attr for attr in vars(server)
        )
        assert not hasattr(server, "decrypt")

    def test_server_rejects_foreign_ciphertexts(self):
        kp_a = generate_keypair(128, rng=random.Random(2))
        kp_b = generate_keypair(128, rng=random.Random(3))
        server = SecureAggregationServer(kp_a.public_key)
        client = SecureClient(0, np.full(10, 0.1))
        with pytest.raises(ValueError):
            server.receive(client.encrypted_distribution(kp_b.public_key))

    def test_server_aggregate_requires_messages(self):
        keypair = generate_keypair(128, rng=random.Random(4))
        server = SecureAggregationServer(keypair.public_key)
        with pytest.raises(ValueError):
            server.aggregate()

    def test_client_must_register_before_sending_registry(self):
        keypair = generate_keypair(128, rng=random.Random(5))
        client = SecureClient(0, np.full(10, 0.1))
        with pytest.raises(RuntimeError):
            client.encrypted_registry(keypair.public_key)

    def test_secure_distribution_scoring_matches_plaintext(self, federation_distributions):
        config = settled_config()
        agent = KeyAgent(key_size=128, rng=random.Random(7))
        secure = SecureDistributionAggregation(config, agent=agent)
        selected = [0, 3, 5, 8]
        score = secure.score_selection(federation_distributions, selected)
        plaintext_pop = federation_distributions[selected].mean(axis=0)
        expected = np.abs(plaintext_pop - 0.1).sum()
        assert score == pytest.approx(expected, abs=1e-6)
        assert secure.stats.messages >= len(selected)
        with pytest.raises(ValueError):
            secure.score_selection(federation_distributions, [])


class TestOverheadAccounting:
    def test_encryption_overhead_report(self):
        report = measure_encryption_overhead(vector_length=56, key_size=128, rng_seed=0)
        assert report.plaintext_bytes > 0
        assert report.ciphertext_bytes > report.plaintext_bytes
        assert report.expansion_factor > 1
        assert report.encrypt_seconds > 0
        assert report.decrypt_seconds > 0
        row = report.as_row()
        assert row["vector_length"] == 56
        assert row["key_size"] == 128

    def test_ciphertext_grows_with_key_size(self):
        small = measure_encryption_overhead(16, key_size=128, rng_seed=0)
        large = measure_encryption_overhead(16, key_size=256, rng_seed=0)
        assert large.ciphertext_bytes > small.ciphertext_bytes

    def test_invalid_measure_arguments(self):
        with pytest.raises(ValueError):
            measure_encryption_overhead(0, 128)
        with pytest.raises(ValueError):
            measure_encryption_overhead(10, 128, trials=0)

    def test_communication_counts_match_paper_formulas(self):
        report = communication_overhead(n_clients=1000, participants_per_round=20,
                                        tentative_selections=10,
                                        reregistration=True, multitime_determination=True)
        assert report.baseline_messages == 20
        assert report.registration_messages == 1000
        assert report.multitime_messages == 200
        assert report.dubhe_total == 1220
        assert report.overhead_ratio == pytest.approx(1200 / 20)

    def test_no_optional_features_no_overhead(self):
        report = communication_overhead(1000, 20, reregistration=False)
        assert report.registration_messages == 0
        assert report.multitime_messages == 0
        assert report.overhead_ratio == 0

    def test_invalid_communication_arguments(self):
        with pytest.raises(ValueError):
            communication_overhead(0, 1)
        with pytest.raises(ValueError):
            communication_overhead(10, 20)
        with pytest.raises(ValueError):
            communication_overhead(10, 5, tentative_selections=0)
