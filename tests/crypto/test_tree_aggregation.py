"""Property tests: tree aggregation ≡ flat fold, bit-identically.

Paillier addition is ciphertext multiplication mod n² — associative and
commutative — so ANY fold shape must yield the very same ciphertext
integers as the flat left-to-right accumulator.  These tests assert that
exact integer identity (not just equal decryptions) for arbitrary
(N, arity, packing width), including N not a multiple of the arity and
single-client trees, plus the O(log N) depth bounds of the streaming
aggregator.
"""

import random
from math import ceil, log

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples

from repro.core.secure import SecureAggregationServer
from repro.crypto.packing import (
    PackedEncryptedVector,
    PackingScheme,
    StreamingTreeAggregator,
    tree_sum,
)
from repro.crypto.paillier import generate_keypair
from repro.crypto.vector import EncryptedVector


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(key_size=64, rng=random.Random(99))


@pytest.fixture(scope="module")
def pk(keypair):
    return keypair.public_key


@pytest.fixture(scope="module")
def sk(keypair):
    return keypair.private_key


def _packed_vectors(pk, n, length, values_seed, max_weight):
    rng = np.random.default_rng(values_seed)
    scheme = PackingScheme.for_counts(pk, length, max_weight=max_weight)
    rows = rng.integers(0, 2, size=(n, length)).astype(float)
    return [PackedEncryptedVector.encrypt(pk, row, scheme=scheme)
            for row in rows]


class TestTreeSumEquivalence:
    @settings(max_examples=scaled_max_examples(20), deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        arity=st.integers(min_value=2, max_value=5),
        length=st.integers(min_value=1, max_value=20),
        values_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_tree_equals_flat_bit_identically(self, pk, n, arity, length,
                                              values_seed):
        vectors = _packed_vectors(pk, n, length, values_seed, max_weight=64)
        flat = PackedEncryptedVector.sum(vectors)
        tree = tree_sum(vectors, arity=arity)
        assert tree.ciphertexts == flat.ciphertexts  # exact integers
        assert tree.weight == flat.weight

    @settings(max_examples=scaled_max_examples(20), deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        arity=st.integers(min_value=2, max_value=5),
        length=st.integers(min_value=1, max_value=20),
        values_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_streaming_aggregator_equals_flat(self, pk, n, arity, length,
                                              values_seed):
        vectors = _packed_vectors(pk, n, length, values_seed, max_weight=64)
        flat = PackedEncryptedVector.sum(vectors)
        agg = StreamingTreeAggregator(arity=arity)
        for v in vectors:
            agg.push(v)
        combined = agg.combined()
        assert combined.ciphertexts == flat.ciphertexts
        assert combined.weight == flat.weight
        assert agg.count == n

    def test_inputs_never_mutated(self, pk, sk):
        vectors = _packed_vectors(pk, 7, 4, values_seed=3, max_weight=16)
        snapshots = [list(v.ciphertexts) for v in vectors]
        tree_sum(vectors, arity=3)
        agg = StreamingTreeAggregator(arity=2)
        for v in vectors:
            agg.push(v)
        agg.combined()
        assert [list(v.ciphertexts) for v in vectors] == snapshots

    def test_per_component_vectors_fold_too(self, pk, sk):
        rng = np.random.default_rng(5)
        rows = rng.random((9, 3))
        vectors = [EncryptedVector.encrypt(pk, row) for row in rows]
        flat = EncryptedVector.sum(vectors)
        tree = tree_sum(vectors, arity=3)
        assert tree.ciphertexts == flat.ciphertexts
        np.testing.assert_array_equal(tree.decrypt(sk), flat.decrypt(sk))

    def test_invalid_arguments(self, pk):
        vectors = _packed_vectors(pk, 2, 2, values_seed=0, max_weight=4)
        with pytest.raises(ValueError):
            tree_sum([], arity=2)
        with pytest.raises(ValueError):
            tree_sum(vectors, arity=1)
        with pytest.raises(ValueError):
            StreamingTreeAggregator(arity=1)
        with pytest.raises(ValueError):
            StreamingTreeAggregator(arity=2).combined()


class TestStreamingDepth:
    def test_single_client_tree(self, pk):
        agg = StreamingTreeAggregator(arity=2)
        (vector,) = _packed_vectors(pk, 1, 3, values_seed=1, max_weight=4)
        agg.push(vector)
        assert agg.depth == 0
        assert agg.partials == 1
        assert agg.combined().ciphertexts == vector.ciphertexts

    @pytest.mark.parametrize("arity,m", [(2, 1), (2, 3), (2, 6), (3, 2), (4, 2)])
    def test_exact_power_depth(self, arity, m):
        # N = arity^m merges into one partial of depth m * (arity - 1)
        agg = StreamingTreeAggregator(arity=arity)
        probe = _probe()
        for _ in range(arity**m):
            agg.push(probe)
        assert agg.partials == 1
        assert agg.depth == m * (arity - 1)

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 100, 1000, 12345])
    def test_logarithmic_depth_bound(self, n):
        agg = StreamingTreeAggregator(arity=2)
        probe = _probe()
        for _ in range(n):
            agg.push(probe)
        assert agg.count == n
        # binary counter: ceil(log2 N) levels, plus at most one extra
        # addition per level when combining the leftover partials
        bound = 2 * ceil(log(n, 2)) + 1 if n > 1 else 0
        assert agg.depth <= bound
        assert agg.partials <= ceil(log(n, 2)) + 1 if n > 1 else 1

    def test_reset_clears_state(self, pk):
        agg = StreamingTreeAggregator(arity=2)
        for v in _packed_vectors(pk, 5, 2, values_seed=2, max_weight=8):
            agg.push(v)
        agg.reset()
        assert agg.count == 0 and agg.partials == 0 and agg.depth == 0
        with pytest.raises(ValueError):
            agg.combined()


def _probe():
    class Probe:
        def copy(self):
            return self

        def add_(self, other):
            return self

    return Probe()


class TestServerTreeMode:
    def test_tree_server_matches_flat_server(self, pk, sk):
        vectors = _packed_vectors(pk, 13, 6, values_seed=9, max_weight=32)
        flat_server = SecureAggregationServer(pk)
        tree_server = SecureAggregationServer(pk, aggregation="tree", arity=3)
        for v in vectors:
            flat_server.receive(v)
            tree_server.receive(v)
        flat_total = flat_server.aggregate()
        tree_total = tree_server.aggregate()
        assert tree_total.ciphertexts == flat_total.ciphertexts
        np.testing.assert_array_equal(tree_total.decrypt(sk),
                                      flat_total.decrypt(sk))
        assert flat_server.fold_depth == 12
        assert tree_server.fold_depth < 12

    def test_invalid_aggregation_mode(self, pk):
        with pytest.raises(ValueError):
            SecureAggregationServer(pk, aggregation="ring")

    def test_reset_restarts_tree(self, pk, sk):
        server = SecureAggregationServer(pk, aggregation="tree")
        first = _packed_vectors(pk, 3, 2, values_seed=4, max_weight=8)
        for v in first:
            server.receive(v)
        server.reset()
        assert server.received_count == 0
        second = _packed_vectors(pk, 2, 2, values_seed=6, max_weight=8)
        for v in second:
            server.receive(v)
        expected = PackedEncryptedVector.sum(second)
        assert server.aggregate().ciphertexts == expected.ciphertexts
