"""Tests for the participation-probability rules (eq. 6-8) and multi-time selection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples

from repro.core.config import DubheConfig
from repro.core.multitime import multi_time_selection
from repro.core.probability import (
    bernoulli_participation,
    expected_category_count,
    expected_participants,
    participation_probabilities,
    participation_probability,
)
from repro.core.registry import RegistryCodebook


def simple_overall(counts):
    """An overall registry with the given per-slot counts."""
    return np.asarray(counts, dtype=float)


class TestParticipationProbability:
    def test_formula_matches_eq6(self):
        # two non-empty categories with 5 and 15 clients, K = 4
        overall = simple_overall([5, 15, 0, 0])
        support = 2
        assert participation_probability(overall, 0, 4) == pytest.approx(4 / (5 * support))
        assert participation_probability(overall, 1, 4) == pytest.approx(4 / (15 * support))

    def test_probability_saturates_at_one(self):
        overall = simple_overall([1, 1])
        assert participation_probability(overall, 0, 10) == 1.0

    def test_empty_registry_rejected(self):
        with pytest.raises(ValueError):
            participation_probability(simple_overall([0, 0]), 0, 5)

    def test_empty_category_rejected(self):
        with pytest.raises(ValueError):
            participation_probability(simple_overall([0, 3]), 0, 5)

    def test_invalid_k_and_index(self):
        overall = simple_overall([2, 3])
        with pytest.raises(ValueError):
            participation_probability(overall, 0, 0)
        with pytest.raises(IndexError):
            participation_probability(overall, 5, 2)


class TestExpectationIdentities:
    def test_eq7_expected_participants_equals_k(self):
        # no category saturates: counts are large relative to K
        overall = simple_overall([30, 50, 20, 0, 40])
        k = 10
        assert expected_participants(overall, k) == pytest.approx(k)

    def test_eq8_every_category_contributes_equally(self):
        overall = simple_overall([30, 50, 20, 0, 40])
        k = 10
        support = 4
        for index in (0, 1, 2, 4):
            assert expected_category_count(overall, index, k) == pytest.approx(k / support)
        assert expected_category_count(overall, 3, k) == 0.0

    def test_saturation_caps_contribution(self):
        overall = simple_overall([1, 100])
        k = 50
        # category 0 saturates at probability 1 → contributes exactly 1 client
        assert expected_category_count(overall, 0, k) == pytest.approx(1.0)

    def test_empty_registry_rejected(self):
        with pytest.raises(ValueError):
            expected_participants(simple_overall([0]), 5)
        with pytest.raises(ValueError):
            expected_category_count(simple_overall([0]), 0, 5)


class TestProbabilitiesForFederation:
    def test_per_client_probabilities(self):
        config = DubheConfig(num_classes=10, reference_set=(1, 2, 10),
                             thresholds={1: 0.7, 2: 0.1, 10: 0.0},
                             participants_per_round=4)
        codebook = RegistryCodebook(config)
        # 6 clients dominated by class 0, 2 balanced clients
        skewed = np.concatenate([[0.9], np.full(9, 0.1 / 9)])
        balanced = np.full(10, 0.1)
        dists = [skewed] * 6 + [balanced] * 2
        registrations = codebook.register_many(dists)
        overall = codebook.aggregate(registrations)
        probs = participation_probabilities(codebook, registrations, overall, 4)
        support = 2
        np.testing.assert_allclose(probs[:6], 4 / (6 * support))
        np.testing.assert_allclose(probs[6:], 4 / (2 * support))


class TestBernoulliParticipation:
    def test_zero_and_one_probabilities(self):
        rng = np.random.default_rng(0)
        out = bernoulli_participation(np.array([0.0, 1.0, 0.0, 1.0]), rng=rng)
        np.testing.assert_array_equal(out, [1, 3])

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ValueError):
            bernoulli_participation(np.array([1.5]))
        with pytest.raises(ValueError):
            bernoulli_participation(np.array([-0.1]))

    def test_expected_count_statistics(self):
        rng = np.random.default_rng(1)
        probs = np.full(2000, 0.25)
        counts = [len(bernoulli_participation(probs, rng=rng)) for _ in range(30)]
        assert np.mean(counts) == pytest.approx(500, rel=0.1)


class TestMultiTimeSelection:
    def test_picks_the_least_biased_try(self):
        candidates = {0: [0], 1: [1], 2: [0, 1]}
        dists = np.array([[1.0, 0.0], [0.0, 1.0]])

        result = multi_time_selection(
            draw=lambda h: candidates[h],
            population_of=lambda sel: dists[list(sel)].mean(axis=0),
            uniform=np.array([0.5, 0.5]),
            tries=3,
        )
        assert result.best.candidate == (0, 1)
        assert result.best_score == pytest.approx(0.0)
        assert len(result.tries) == 3
        assert result.scores.shape == (3,)

    def test_mean_population(self):
        dists = np.array([[1.0, 0.0], [0.0, 1.0]])
        result = multi_time_selection(
            draw=lambda h: [h % 2],
            population_of=lambda sel: dists[list(sel)].mean(axis=0),
            uniform=np.array([0.5, 0.5]),
            tries=2,
        )
        np.testing.assert_allclose(result.mean_population, [0.5, 0.5])

    def test_empty_draws_are_penalised(self):
        dists = np.array([[0.6, 0.4]])
        result = multi_time_selection(
            draw=lambda h: [] if h == 0 else [0],
            population_of=lambda sel: dists[list(sel)].mean(axis=0),
            uniform=np.array([0.5, 0.5]),
            tries=2,
        )
        assert result.best.candidate == (0,)

    def test_invalid_tries(self):
        with pytest.raises(ValueError):
            multi_time_selection(lambda h: [0], lambda s: np.array([1.0]), np.array([1.0]), 0)

    def test_batch_scoring_matches_per_candidate_path(self):
        rng = np.random.default_rng(2)
        dists = rng.dirichlet(np.ones(4), size=20)
        uniform = np.full(4, 0.25)
        candidates = {h: list(rng.choice(20, size=6, replace=False)) for h in range(5)}

        def population_of(sel):
            return dists[list(sel)].mean(axis=0)

        looped = multi_time_selection(
            lambda h: candidates[h], population_of, uniform, tries=5
        )
        batched = multi_time_selection(
            lambda h: candidates[h], population_of, uniform, tries=5,
            population_of_many=lambda cands: dists[np.asarray(cands)].mean(axis=1),
        )
        assert batched.best.candidate == looped.best.candidate
        np.testing.assert_allclose(batched.scores, looped.scores, atol=1e-15)
        np.testing.assert_allclose(batched.best.population, looped.best.population,
                                   atol=1e-15)

    def test_batch_scoring_skipped_for_ragged_draws(self):
        dists = np.array([[1.0, 0.0], [0.0, 1.0]])
        calls = []

        def population_of_many(cands):
            calls.append(cands)
            return dists[np.asarray(cands)].mean(axis=1)

        result = multi_time_selection(
            lambda h: [0] if h == 0 else [0, 1],
            lambda sel: dists[list(sel)].mean(axis=0),
            np.array([0.5, 0.5]),
            tries=2,
            population_of_many=population_of_many,
        )
        assert not calls  # ragged sizes -> per-candidate fallback
        assert result.best.candidate == (0, 1)

    def test_more_tries_never_hurt_in_expectation(self):
        # statistical sanity: best-of-H score is non-increasing in H
        rng = np.random.default_rng(0)
        dists = rng.dirichlet(np.ones(5), size=50)
        uniform = np.full(5, 0.2)

        def run(tries, seed):
            local_rng = np.random.default_rng(seed)

            def draw(_h):
                return local_rng.choice(50, size=5, replace=False)

            return multi_time_selection(
                draw, lambda sel: dists[list(sel)].mean(axis=0), uniform, tries
            ).best_score

        small = np.mean([run(1, s) for s in range(40)])
        large = np.mean([run(10, s) for s in range(40)])
        assert large <= small + 1e-9


@settings(max_examples=scaled_max_examples(100), deadline=None)
@given(
    counts=st.lists(st.integers(min_value=1, max_value=200), min_size=2, max_size=30),
    k=st.integers(min_value=1, max_value=20),
)
def test_property_expected_participants_never_exceeds_and_hits_k(counts, k):
    """E|S| == K when no saturation, and never exceeds the total client count."""
    overall = np.asarray(counts, dtype=float)
    expected = expected_participants(overall, k)
    assert expected <= overall.sum() + 1e-9
    support = len(counts)
    if all(k <= c * support for c in counts):  # no probability saturates
        assert expected == pytest.approx(k)
