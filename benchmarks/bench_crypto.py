#!/usr/bin/env python
"""Crypto throughput benchmark: per-component vs packed Paillier pipeline.

Measures the full registry data path of the secure protocol — encrypt N
clients' registries, homomorphically aggregate, decrypt the aggregate — in
the two wire formats:

* **per-component** — one ciphertext (and one ``pow(r, n, n²)``) per vector
  component (:class:`repro.crypto.EncryptedVector`);
* **packed** — BatchCrypt-style slot packing with precomputed noise
  (:class:`repro.crypto.PackedEncryptedVector` + ``NoisePool``), the
  configuration deployed by FATE-style systems.

The noise precompute is timed separately: it is plaintext-independent and
runs offline (between rounds / on idle cores), which is exactly why the
packed pipeline is fast online.

Run from the repository root::

    PYTHONPATH=src python benchmarks/bench_crypto.py

which writes ``BENCH_crypto.json`` next to this repository's ROADMAP.  Use
``--key-sizes 256 --min-speedup 5`` as a CI smoke check (exits non-zero when
packed encryption fails to beat per-component by the given factor).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
from time import perf_counter

import numpy as np

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
if os.path.isdir(os.path.join(_REPO_ROOT, "src")) and \
        os.path.join(_REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(_REPO_ROOT, "src"))

from repro.crypto import (  # noqa: E402  (sys.path setup above)
    EncryptedVector,
    NoisePool,
    PackedEncryptedVector,
    PackingScheme,
    generate_keypair,
    plaintext_vector_bytes,
)

#: Registry length of the paper's §6.4 study (reference set G = {1, 2, C}).
REGISTRY_LENGTH = 56

#: Default clients per key size: full scale where per-component encryption
#: is cheap, reduced where a single registry already costs seconds.
DEFAULT_CLIENTS = {256: 100, 1024: 8, 2048: 4}


def registry_workload(n_clients: int, length: int) -> list[np.ndarray]:
    """N one-hot registries (the values do not affect Paillier cost)."""
    vectors = []
    for k in range(n_clients):
        v = np.zeros(length)
        v[k % length] = 1.0
        vectors.append(v)
    return vectors


def bench_key_size(key_size: int, n_clients: int, length: int,
                   seed: int = 0) -> dict:
    """Measure both pipelines end-to-end at one key size."""
    keypair = generate_keypair(key_size, rng=random.Random(seed))
    pk, sk = keypair.public_key, keypair.private_key
    vectors = registry_workload(n_clients, length)
    plaintext_bytes = plaintext_vector_bytes(vectors[0])

    # -- per-component pipeline ---------------------------------------------
    start = perf_counter()
    per_component = [EncryptedVector.encrypt(pk, v) for v in vectors]
    pc_encrypt = perf_counter() - start
    start = perf_counter()
    pc_total = EncryptedVector.sum(per_component)
    pc_aggregate = perf_counter() - start
    start = perf_counter()
    pc_plain = pc_total.decrypt(sk)
    pc_decrypt = perf_counter() - start

    # -- packed pipeline (precomputed noise) --------------------------------
    scheme = PackingScheme(pk, length, max_weight=n_clients)
    noise = NoisePool(pk)
    start = perf_counter()
    noise.refill(scheme.num_ciphertexts * n_clients)
    noise_precompute = perf_counter() - start
    start = perf_counter()
    packed = [PackedEncryptedVector.encrypt(pk, v, scheme=scheme, noise=noise)
              for v in vectors]
    pk_encrypt = perf_counter() - start
    start = perf_counter()
    pk_total = PackedEncryptedVector.sum(packed)
    pk_aggregate = perf_counter() - start
    start = perf_counter()
    pk_plain = pk_total.decrypt(sk)
    pk_decrypt = perf_counter() - start

    if not np.array_equal(pc_plain, pk_plain):
        raise AssertionError(
            f"packed and per-component aggregates differ at {key_size} bits"
        )

    return {
        "key_size": key_size,
        "n_clients": n_clients,
        "registry_length": length,
        "plaintext_bytes_per_client": plaintext_bytes,
        "per_component": {
            "ciphertexts_per_client": length,
            "wire_bytes_per_client": per_component[0].nbytes(),
            "encrypt_s": round(pc_encrypt, 6),
            "aggregate_s": round(pc_aggregate, 6),
            "decrypt_s": round(pc_decrypt, 6),
            "expansion_factor": round(per_component[0].nbytes() / plaintext_bytes, 1),
        },
        "packed": {
            "ciphertexts_per_client": scheme.num_ciphertexts,
            "slots_per_ciphertext": scheme.slots_per_ciphertext,
            "slot_bits": scheme.slot_bits,
            "wire_bytes_per_client": packed[0].nbytes(),
            "noise_precompute_s": round(noise_precompute, 6),
            "encrypt_s": round(pk_encrypt, 6),
            "aggregate_s": round(pk_aggregate, 6),
            "decrypt_s": round(pk_decrypt, 6),
            "expansion_factor": round(packed[0].nbytes() / plaintext_bytes, 1),
        },
        "speedup": {
            "encrypt": round(pc_encrypt / pk_encrypt, 1) if pk_encrypt else None,
            "aggregate": round(pc_aggregate / pk_aggregate, 1) if pk_aggregate else None,
            "decrypt": round(pc_decrypt / pk_decrypt, 1) if pk_decrypt else None,
            "wire": round(per_component[0].nbytes() / packed[0].nbytes(), 1),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--key-sizes", default="256,1024,2048",
                        help="comma-separated Paillier modulus sizes in bits")
    parser.add_argument("--clients", type=int, default=None,
                        help="override clients for every key size")
    parser.add_argument("--length", type=int, default=REGISTRY_LENGTH,
                        help="registry vector length")
    parser.add_argument("--out", default=os.path.join(_REPO_ROOT, "BENCH_crypto.json"),
                        help="output JSON path")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail (exit 1) when the packed encrypt speedup at "
                             "the first key size falls below this factor")
    args = parser.parse_args(argv)

    key_sizes = [int(k) for k in args.key_sizes.split(",")]
    results = []
    for key_size in key_sizes:
        n_clients = args.clients or DEFAULT_CLIENTS.get(key_size, 4)
        print(f"benchmarking {key_size}-bit keys, {n_clients} clients "
              f"x length-{args.length} registries ...", flush=True)
        row = bench_key_size(key_size, n_clients, args.length)
        results.append(row)
        s = row["speedup"]
        print(f"  encrypt {row['per_component']['encrypt_s']:.3f}s -> "
              f"{row['packed']['encrypt_s']:.3f}s ({s['encrypt']}x), "
              f"wire {s['wire']}x smaller, decrypt {s['decrypt']}x faster")

    payload = {
        "benchmark": "crypto_throughput",
        "generated_by": "benchmarks/bench_crypto.py",
        "machine": {"python": platform.python_version(),
                    "platform": platform.platform()},
        "workload": "one-hot registries, full encrypt -> aggregate -> decrypt",
        "results": results,
    }
    with open(args.out, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")

    if args.min_speedup is not None:
        achieved = results[0]["speedup"]["encrypt"]
        if achieved is None or achieved < args.min_speedup:
            print(f"FAIL: packed encrypt speedup {achieved}x < required "
                  f"{args.min_speedup}x", file=sys.stderr)
            return 1
        print(f"OK: packed encrypt speedup {achieved}x >= {args.min_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
