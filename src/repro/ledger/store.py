"""The SQLite-backed run ledger: append-only per-round run records.

Long multi-round federated runs previously lived only in process memory — a
crash at round 180 of 200 lost everything, and no finished run could be
independently re-verified.  :class:`RunLedger` makes every run durable: one
row per run (resolved config, scenario spec, seeds, recipe, benchmark
context) plus one row per completed round (the full
:class:`~repro.federated.history.RoundRecord` and a checksummed global-model
checkpoint), each committed in its own SQLite transaction.  A killed process
therefore loses at most the round that was in flight; everything committed
before the kill is intact and resumable.

Safety properties:

* **Append-only rounds** — a round row is never updated; recommitting an
  existing ``(run_id, round_index)`` raises instead of silently rewriting
  history.
* **Never overwrite foreign files** — opening a path that exists but is not
  a ledger (wrong SQLite ``application_id``, not SQLite at all) raises
  :class:`LedgerCorruptError`/:class:`LedgerSchemaError`; the file is left
  untouched.
* **Schema versioning** — the SQLite ``user_version`` pragma records the
  ledger schema; a ledger written by an incompatible version is detected
  and reported, not migrated in place.
* **Checksummed checkpoints** — every global-state blob carries its SHA-256;
  a truncated or bit-flipped checkpoint is caught on load.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from .codec import state_from_bytes, state_sha256, state_to_bytes

__all__ = [
    "LedgerCorruptError",
    "LedgerError",
    "LedgerSchemaError",
    "RunInfo",
    "RunLedger",
    "SCHEMA_VERSION",
]

#: Version of the on-disk schema; bumped on incompatible layout changes and
#: checked against the file's ``PRAGMA user_version`` on every open.
SCHEMA_VERSION = 1

#: SQLite ``application_id`` stamped into every ledger file ("DUBH" in
#: ASCII), so a ledger is distinguishable from any other SQLite database.
_APPLICATION_ID = 0x44554248

_SCHEMA = """
CREATE TABLE runs (
    run_id         TEXT PRIMARY KEY,
    name           TEXT NOT NULL,
    status         TEXT NOT NULL CHECK (status IN ('running', 'completed')),
    created_at     REAL NOT NULL,
    finished_at    REAL,
    rounds_planned INTEGER NOT NULL,
    config_json    TEXT NOT NULL,
    scenario_json  TEXT,
    seeds_json     TEXT NOT NULL,
    recipe_json    TEXT,
    bench_json     TEXT,
    report_json    TEXT
);
CREATE TABLE rounds (
    run_id       TEXT NOT NULL REFERENCES runs(run_id),
    round_index  INTEGER NOT NULL,
    record_json  TEXT NOT NULL,
    state        BLOB NOT NULL,
    state_sha256 TEXT NOT NULL,
    wall_clock   REAL NOT NULL,
    committed_at REAL NOT NULL,
    PRIMARY KEY (run_id, round_index)
);
"""


class LedgerError(RuntimeError):
    """Base class of every run-ledger failure."""


class LedgerCorruptError(LedgerError):
    """The ledger file is damaged (not SQLite, failed integrity check, bad
    checkpoint checksum).  The file is reported and left untouched — never
    silently overwritten."""


class LedgerSchemaError(LedgerError):
    """The file is a healthy SQLite database but not a compatible ledger
    (foreign ``application_id`` or a different :data:`SCHEMA_VERSION`)."""


@dataclass(frozen=True)
class RunInfo:
    """One run's row of the ledger, with JSON columns already decoded.

    Example
    -------
    >>> info = RunInfo(run_id="ab12", name="demo", status="completed",
    ...                created_at=0.0, finished_at=1.0, rounds_planned=5,
    ...                rounds_committed=5, config={"rounds": 5}, seeds={})
    >>> info.is_complete()
    True
    """

    run_id: str
    name: str
    status: str
    created_at: float
    finished_at: Optional[float]
    rounds_planned: int
    rounds_committed: int
    config: dict
    seeds: dict
    scenario: Optional[dict] = None
    recipe: Optional[dict] = None
    bench: Optional[dict] = None
    report: Optional[dict] = None

    def is_complete(self) -> bool:
        """Whether the run finished (as opposed to running or killed).

        Example
        -------
        >>> RunInfo("x", "n", "running", 0.0, None, 5, 2, {}, {}).is_complete()
        False
        """
        return self.status == "completed"

    def wall_clock(self) -> Optional[float]:
        """Total recorded duration in seconds (None while still running).

        Example
        -------
        >>> RunInfo("x", "n", "completed", 1.0, 4.5, 5, 5, {}, {}).wall_clock()
        3.5
        """
        if self.finished_at is None:
            return None
        return self.finished_at - self.created_at


def _json_or_none(text: Optional[str]) -> Optional[dict]:
    return None if text is None else json.loads(text)


class RunLedger:
    """A durable record of federated runs backed by one SQLite file.

    Opening a path creates a fresh ledger when the file does not exist (and
    ``create=True``), or validates an existing one: a non-ledger or
    corrupted file raises instead of being overwritten.  All writes are
    single transactions, so readers in other processes (the CLI, a resuming
    run) always observe a consistent prefix of the run.

    Example
    -------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "ledger.db")
    >>> with RunLedger(path) as ledger:
    ...     run_id = ledger.begin_run("demo", config={"rounds": 2},
    ...                               seeds={"config": 0}, rounds_planned=2)
    ...     ledger.round_count(run_id)
    0
    """

    def __init__(self, path: "str | os.PathLike", create: bool = True,
                 timeout: float = 30.0):
        self.path = os.fspath(path)
        existed = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        if not existed and not create:
            raise LedgerError(f"no ledger at {self.path}")
        self._conn = sqlite3.connect(self.path, timeout=timeout)
        self._conn.row_factory = sqlite3.Row
        try:
            if existed:
                self._validate()
            else:
                self._initialize()
        except BaseException:
            self._conn.close()
            raise

    # -- open/validate -------------------------------------------------------------

    def _pragma(self, name: str):
        return self._conn.execute(f"PRAGMA {name}").fetchone()[0]

    def _initialize(self) -> None:
        with self._conn:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.executescript(_SCHEMA)
            self._conn.execute(f"PRAGMA application_id = {_APPLICATION_ID}")
            self._conn.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")

    def _validate(self) -> None:
        try:
            application_id = self._pragma("application_id")
            user_version = self._pragma("user_version")
            quick_check = self._pragma("quick_check")
        except sqlite3.DatabaseError as exc:
            raise LedgerCorruptError(
                f"{self.path} is not a SQLite database ({exc}); refusing to "
                "overwrite it"
            ) from exc
        if application_id != _APPLICATION_ID:
            raise LedgerSchemaError(
                f"{self.path} is a SQLite database but not a run ledger "
                f"(application_id {application_id:#x}); refusing to touch it"
            )
        if user_version != SCHEMA_VERSION:
            raise LedgerSchemaError(
                f"{self.path} uses ledger schema v{user_version}, this code "
                f"speaks v{SCHEMA_VERSION}; refusing to migrate in place"
            )
        if quick_check != "ok":
            raise LedgerCorruptError(
                f"{self.path} failed SQLite integrity check: {quick_check}"
            )

    # -- recording -----------------------------------------------------------------

    def begin_run(self, name: str, config: Mapping, seeds: Mapping,
                  rounds_planned: int, scenario: Optional[Mapping] = None,
                  recipe: Optional[Mapping] = None,
                  bench: Optional[Mapping] = None,
                  run_id: Optional[str] = None) -> str:
        """Open a new run row (status ``running``) and return its id.

        Example
        -------
        >>> import tempfile, os
        >>> ledger = RunLedger(os.path.join(tempfile.mkdtemp(), "l.db"))
        >>> run_id = ledger.begin_run("demo", {"rounds": 1}, {"config": 0}, 1)
        >>> ledger.run(run_id).status
        'running'
        """
        run_id = run_id or uuid.uuid4().hex[:12]
        with self._conn:
            self._conn.execute(
                "INSERT INTO runs (run_id, name, status, created_at, "
                "rounds_planned, config_json, scenario_json, seeds_json, "
                "recipe_json, bench_json) VALUES (?, ?, 'running', ?, ?, ?, "
                "?, ?, ?, ?)",
                (run_id, name, time.time(), int(rounds_planned),
                 json.dumps(dict(config)),
                 None if scenario is None else json.dumps(dict(scenario)),
                 json.dumps(dict(seeds)),
                 None if recipe is None else json.dumps(dict(recipe)),
                 None if bench is None else json.dumps(dict(bench))),
            )
        return run_id

    def commit_round(self, run_id: str, record: Mapping,
                     state: Mapping[str, np.ndarray],
                     wall_clock: float = 0.0) -> None:
        """Append one completed round in a single transaction.

        *record* is a :meth:`~repro.federated.history.RoundRecord.to_dict`
        payload, *state* the post-aggregation global model state (the
        resume checkpoint).  Re-committing an already-recorded round index
        raises — committed history is immutable.

        Example
        -------
        >>> import tempfile, os, numpy as np
        >>> ledger = RunLedger(os.path.join(tempfile.mkdtemp(), "l.db"))
        >>> run_id = ledger.begin_run("demo", {}, {}, 1)
        >>> ledger.commit_round(run_id, {"round_index": 0},
        ...                     {"w": np.zeros(2)})
        >>> ledger.round_count(run_id)
        1
        """
        record = dict(record)
        round_index = int(record["round_index"])
        blob = state_to_bytes(state)
        try:
            with self._conn:
                self._conn.execute(
                    "INSERT INTO rounds (run_id, round_index, record_json, "
                    "state, state_sha256, wall_clock, committed_at) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?)",
                    (run_id, round_index, json.dumps(record), blob,
                     state_sha256(blob), float(wall_clock), time.time()),
                )
        except sqlite3.IntegrityError as exc:
            raise LedgerError(
                f"round {round_index} of run {run_id} is already committed; "
                "ledger rounds are append-only"
            ) from exc

    def finish_run(self, run_id: str, report: Optional[Mapping] = None) -> None:
        """Mark a run completed (optionally attaching a report summary).

        Example
        -------
        >>> import tempfile, os
        >>> ledger = RunLedger(os.path.join(tempfile.mkdtemp(), "l.db"))
        >>> run_id = ledger.begin_run("demo", {}, {}, 1)
        >>> ledger.finish_run(run_id, report={"final_accuracy": 0.9})
        >>> ledger.run(run_id).is_complete()
        True
        """
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE runs SET status = 'completed', finished_at = ?, "
                "report_json = COALESCE(?, report_json) WHERE run_id = ?",
                (time.time(),
                 None if report is None else json.dumps(dict(report)), run_id),
            )
        if cursor.rowcount == 0:
            raise LedgerError(f"no run {run_id!r} in {self.path}")

    def reopen_run(self, run_id: str) -> None:
        """Flip a run back to ``running`` (the RESUME path continues it).

        Example
        -------
        >>> import tempfile, os
        >>> ledger = RunLedger(os.path.join(tempfile.mkdtemp(), "l.db"))
        >>> run_id = ledger.begin_run("demo", {}, {}, 1)
        >>> ledger.reopen_run(run_id)
        """
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE runs SET status = 'running', finished_at = NULL "
                "WHERE run_id = ?", (run_id,))
        if cursor.rowcount == 0:
            raise LedgerError(f"no run {run_id!r} in {self.path}")

    def set_run_name(self, run_id: str, name: str) -> None:
        """Rename a run (e.g. a scenario run labelling itself post-hoc).

        Example
        -------
        >>> import tempfile, os
        >>> ledger = RunLedger(os.path.join(tempfile.mkdtemp(), "l.db"))
        >>> run_id = ledger.begin_run("demo", {}, {}, 1)
        >>> ledger.set_run_name(run_id, "churn-sweep")
        >>> ledger.run(run_id).name
        'churn-sweep'
        """
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE runs SET name = ? WHERE run_id = ?", (name, run_id))
        if cursor.rowcount == 0:
            raise LedgerError(f"no run {run_id!r} in {self.path}")

    def attach_report(self, run_id: str, report: Mapping) -> None:
        """Store a (scenario) report summary on an existing run row.

        Example
        -------
        >>> import tempfile, os
        >>> ledger = RunLedger(os.path.join(tempfile.mkdtemp(), "l.db"))
        >>> run_id = ledger.begin_run("demo", {}, {}, 1)
        >>> ledger.attach_report(run_id, {"skipped_rounds": 0})
        >>> ledger.run(run_id).report
        {'skipped_rounds': 0}
        """
        with self._conn:
            cursor = self._conn.execute(
                "UPDATE runs SET report_json = ? WHERE run_id = ?",
                (json.dumps(dict(report)), run_id))
        if cursor.rowcount == 0:
            raise LedgerError(f"no run {run_id!r} in {self.path}")

    # -- reading -------------------------------------------------------------------

    def _run_info(self, row: sqlite3.Row) -> RunInfo:
        committed = self._conn.execute(
            "SELECT COUNT(*) FROM rounds WHERE run_id = ?",
            (row["run_id"],)).fetchone()[0]
        return RunInfo(
            run_id=row["run_id"],
            name=row["name"],
            status=row["status"],
            created_at=row["created_at"],
            finished_at=row["finished_at"],
            rounds_planned=row["rounds_planned"],
            rounds_committed=committed,
            config=json.loads(row["config_json"]),
            seeds=json.loads(row["seeds_json"]),
            scenario=_json_or_none(row["scenario_json"]),
            recipe=_json_or_none(row["recipe_json"]),
            bench=_json_or_none(row["bench_json"]),
            report=_json_or_none(row["report_json"]),
        )

    def runs(self) -> "list[RunInfo]":
        """Every recorded run, oldest first.

        Example
        -------
        >>> import tempfile, os
        >>> ledger = RunLedger(os.path.join(tempfile.mkdtemp(), "l.db"))
        >>> ledger.runs()
        []
        """
        rows = self._conn.execute(
            "SELECT * FROM runs ORDER BY created_at, run_id").fetchall()
        return [self._run_info(row) for row in rows]

    def run(self, run_id: Optional[str] = None) -> RunInfo:
        """One run's info; ``run_id=None`` means the most recent run.

        Example
        -------
        >>> import tempfile, os
        >>> ledger = RunLedger(os.path.join(tempfile.mkdtemp(), "l.db"))
        >>> run_id = ledger.begin_run("demo", {}, {}, 1)
        >>> ledger.run().run_id == run_id
        True
        """
        if run_id is None:
            row = self._conn.execute(
                "SELECT * FROM runs ORDER BY created_at DESC, run_id DESC "
                "LIMIT 1").fetchone()
            if row is None:
                raise LedgerError(f"{self.path} contains no runs")
        else:
            row = self._conn.execute(
                "SELECT * FROM runs WHERE run_id = ?", (run_id,)).fetchone()
            if row is None:
                raise LedgerError(f"no run {run_id!r} in {self.path}")
        return self._run_info(row)

    def round_count(self, run_id: str) -> int:
        """How many rounds of a run are durably committed.

        Example
        -------
        >>> import tempfile, os
        >>> ledger = RunLedger(os.path.join(tempfile.mkdtemp(), "l.db"))
        >>> ledger.round_count(ledger.begin_run("demo", {}, {}, 1))
        0
        """
        return self._conn.execute(
            "SELECT COUNT(*) FROM rounds WHERE run_id = ?",
            (run_id,)).fetchone()[0]

    def rounds(self, run_id: str) -> "list[dict]":
        """The committed round records of a run, in round order.

        Each entry is the :meth:`RoundRecord.to_dict` payload as committed;
        a contiguity gap (a missing round index) means the file was
        tampered with and raises :class:`LedgerCorruptError`.

        Example
        -------
        >>> import tempfile, os
        >>> ledger = RunLedger(os.path.join(tempfile.mkdtemp(), "l.db"))
        >>> ledger.rounds(ledger.begin_run("demo", {}, {}, 1))
        []
        """
        rows = self._conn.execute(
            "SELECT round_index, record_json FROM rounds WHERE run_id = ? "
            "ORDER BY round_index", (run_id,)).fetchall()
        records = []
        for position, row in enumerate(rows):
            if row["round_index"] != position:
                raise LedgerCorruptError(
                    f"run {run_id} in {self.path} is missing round "
                    f"{position} (found {row['round_index']}); committed "
                    "rounds must be contiguous"
                )
            records.append(json.loads(row["record_json"]))
        return records

    def checkpoint(self, run_id: str, round_index: Optional[int] = None,
                   ) -> "tuple[int, dict[str, np.ndarray]]":
        """A committed global-state checkpoint (default: the latest round).

        Returns ``(round_index, state_dict)``; the blob's SHA-256 is
        verified before deserialization, so a damaged checkpoint raises
        :class:`LedgerCorruptError` instead of resuming from garbage.

        Example
        -------
        >>> import tempfile, os, numpy as np
        >>> ledger = RunLedger(os.path.join(tempfile.mkdtemp(), "l.db"))
        >>> run_id = ledger.begin_run("demo", {}, {}, 1)
        >>> ledger.commit_round(run_id, {"round_index": 0}, {"w": np.ones(2)})
        >>> index, state = ledger.checkpoint(run_id)
        >>> index, state["w"].tolist()
        (0, [1.0, 1.0])
        """
        if round_index is None:
            row = self._conn.execute(
                "SELECT round_index, state, state_sha256 FROM rounds "
                "WHERE run_id = ? ORDER BY round_index DESC LIMIT 1",
                (run_id,)).fetchone()
        else:
            row = self._conn.execute(
                "SELECT round_index, state, state_sha256 FROM rounds "
                "WHERE run_id = ? AND round_index = ?",
                (run_id, round_index)).fetchone()
        if row is None:
            raise LedgerError(
                f"run {run_id!r} has no committed checkpoint"
                + (f" at round {round_index}" if round_index is not None else "")
            )
        blob = row["state"]
        if state_sha256(blob) != row["state_sha256"]:
            raise LedgerCorruptError(
                f"checkpoint of run {run_id} round {row['round_index']} "
                "fails its SHA-256 check; refusing to resume from it"
            )
        return row["round_index"], state_from_bytes(blob)

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Close the SQLite connection (idempotent).

        Example
        -------
        >>> import tempfile, os
        >>> ledger = RunLedger(os.path.join(tempfile.mkdtemp(), "l.db"))
        >>> ledger.close(); ledger.close()
        """
        if self._conn is not None:
            self._conn.close()
            self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
