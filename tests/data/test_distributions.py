"""Tests for label-distribution utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from _hypothesis_support import scaled_max_examples
from hypothesis.extra import numpy as hnp

from repro.data.distributions import (
    average_emd,
    emd,
    imbalance_ratio,
    kl_divergence,
    label_counts,
    label_distribution,
    normalize_counts,
    population_distribution,
    uniform_distribution,
    validate_distribution,
)


class TestValidateDistribution:
    def test_accepts_valid(self):
        p = validate_distribution([0.2, 0.3, 0.5])
        assert p.dtype == float

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_distribution([0.5, 0.7, -0.2])

    def test_rejects_not_summing_to_one(self):
        with pytest.raises(ValueError):
            validate_distribution([0.5, 0.6])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            validate_distribution(np.ones((2, 2)) / 4)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_distribution([])


class TestUniformAndNormalize:
    def test_uniform(self):
        np.testing.assert_allclose(uniform_distribution(4), [0.25] * 4)

    def test_uniform_invalid(self):
        with pytest.raises(ValueError):
            uniform_distribution(0)

    def test_normalize(self):
        np.testing.assert_allclose(normalize_counts([2, 2, 4]), [0.25, 0.25, 0.5])

    def test_normalize_zero_counts_gives_uniform(self):
        np.testing.assert_allclose(normalize_counts([0, 0]), [0.5, 0.5])

    def test_normalize_negative_rejected(self):
        with pytest.raises(ValueError):
            normalize_counts([1, -1])


class TestEMD:
    def test_identical_is_zero(self):
        assert emd([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_disjoint_is_two(self):
        assert emd([1.0, 0.0], [0.0, 1.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert emd([0.7, 0.3], [0.5, 0.5]) == pytest.approx(0.4)

    def test_symmetric(self):
        p, q = np.array([0.7, 0.2, 0.1]), np.array([0.2, 0.5, 0.3])
        assert emd(p, q) == pytest.approx(emd(q, p))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            emd([0.5, 0.5], [1.0])


class TestKL:
    def test_identical_is_zero(self):
        assert kl_divergence([0.5, 0.5], [0.5, 0.5]) == pytest.approx(0.0, abs=1e-9)

    def test_positive_for_different(self):
        assert kl_divergence([0.9, 0.1], [0.5, 0.5]) > 0

    def test_handles_zeros(self):
        assert np.isfinite(kl_divergence([1.0, 0.0], [0.5, 0.5]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            kl_divergence([0.5, 0.5], [1.0])


class TestImbalanceRatio:
    def test_balanced(self):
        assert imbalance_ratio([10, 10, 10]) == 1.0

    def test_known(self):
        assert imbalance_ratio([100, 50, 10]) == pytest.approx(10.0)

    def test_zero_class_gives_inf(self):
        assert imbalance_ratio([5, 0]) == float("inf")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            imbalance_ratio([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            imbalance_ratio([1, -1])


class TestLabelHelpers:
    def test_label_counts(self):
        np.testing.assert_array_equal(label_counts([0, 1, 1, 3], 4), [1, 2, 0, 1])

    def test_label_distribution(self):
        np.testing.assert_allclose(label_distribution([0, 0, 1, 1], 2), [0.5, 0.5])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            label_counts([0, 5], 3)


class TestPopulationAndAverageEMD:
    def test_population_is_mean(self):
        dists = [np.array([1.0, 0.0]), np.array([0.0, 1.0])]
        np.testing.assert_allclose(population_distribution(dists), [0.5, 0.5])

    def test_population_empty_rejected(self):
        with pytest.raises(ValueError):
            population_distribution([])

    def test_average_emd_identical_clients_is_zero(self):
        dists = [np.array([0.3, 0.7])] * 5
        assert average_emd(dists) == pytest.approx(0.0)

    def test_average_emd_one_class_clients(self):
        # each client holds a single class, uniform global: EMD_k = 2*(1-1/C)
        dists = [np.eye(4)[i] for i in range(4)]
        assert average_emd(dists) == pytest.approx(2 * (1 - 0.25))

    def test_average_emd_explicit_reference(self):
        dists = [np.array([1.0, 0.0])]
        assert average_emd(dists, reference=np.array([0.5, 0.5])) == pytest.approx(1.0)

    def test_average_emd_empty_rejected(self):
        with pytest.raises(ValueError):
            average_emd([])


@settings(max_examples=scaled_max_examples(100), deadline=None)
@given(
    counts=hnp.arrays(
        dtype=np.int64,
        shape=st.integers(min_value=2, max_value=12),
        elements=st.integers(min_value=0, max_value=1000),
    )
)
def test_property_emd_bounds(counts):
    """0 <= EMD(p, u) <= 2 for any label distribution p."""
    p = normalize_counts(counts.astype(float))
    u = uniform_distribution(p.size)
    value = emd(p, u)
    assert 0.0 <= value <= 2.0 + 1e-9


@settings(max_examples=scaled_max_examples(100), deadline=None)
@given(
    counts=hnp.arrays(
        dtype=np.int64,
        shape=st.integers(min_value=2, max_value=12),
        elements=st.integers(min_value=0, max_value=1000),
    )
)
def test_property_normalize_counts_sums_to_one(counts):
    p = normalize_counts(counts.astype(float))
    assert p.sum() == pytest.approx(1.0)
    assert np.all(p >= 0)


@settings(max_examples=scaled_max_examples(50), deadline=None)
@given(
    a=hnp.arrays(dtype=np.float64, shape=6,
                 elements=st.floats(min_value=0.01, max_value=1.0)),
    b=hnp.arrays(dtype=np.float64, shape=6,
                 elements=st.floats(min_value=0.01, max_value=1.0)),
    c=hnp.arrays(dtype=np.float64, shape=6,
                 elements=st.floats(min_value=0.01, max_value=1.0)),
)
def test_property_emd_triangle_inequality(a, b, c):
    p, q, r = normalize_counts(a), normalize_counts(b), normalize_counts(c)
    assert emd(p, r) <= emd(p, q) + emd(q, r) + 1e-9
