"""Figure 2 — the motivation experiments.

Paper setup (§3, Figure 2): CIFAR10, N = 1000 clients, K = 20, random
selection, 1000 rounds.
  (a) fix EMD_avg = 1 and sweep the global imbalance ratio ρ ∈ {1, 2, 5, 10}:
      test accuracy degrades as ρ grows, and the participated class
      proportion tracks the skewed global distribution.
  (b) fix ρ = 10 and sweep EMD_avg ∈ {0, 0.5, 1.0, 1.5}: accuracy degrades
      and fluctuates more as clients become more dissimilar.

Reduced scale here: a CIFAR-like synthetic task, N = 60, K = 8, an MLP and a
short horizon.  The reproduced claims are the *orderings*: accuracy is
non-increasing in ρ and in EMD_avg (up to noise), and the expected
participated class proportion under random selection matches the skewed
global distribution rather than the uniform one.
"""

from __future__ import annotations

import numpy as np
import pytest

from helpers import build_federation, make_selector, print_table, run_training

N_CLIENTS = 60
K = 8
ROUNDS = 24
TAIL = 4


def paper_scale() -> dict:
    """The configuration used by the paper (for reference, not executed)."""
    return {"dataset": "CIFAR10", "n_clients": 1000, "k": 20, "rounds": 1000,
            "model": "ResNet18", "rho_sweep": (1, 2, 5, 10), "emd_sweep": (0, 0.5, 1.0, 1.5)}


def _train_random(rho: float, emd: float, seed: int = 0):
    fed = build_federation("cifar", rho=rho, emd_avg=emd, n_clients=N_CLIENTS, seed=seed)
    selector = make_selector("random", fed, K, seed=seed)
    history = run_training(fed, selector, rounds=ROUNDS, k=K, model="mlp",
                           eval_every=2, learning_rate=3e-3, seed=seed)
    return fed, history


@pytest.mark.benchmark(group="fig2")
def test_fig2a_global_skew(benchmark):
    """Accuracy vs global imbalance ratio ρ under random selection."""
    rhos = (1.0, 5.0, 10.0)

    def experiment():
        results = {}
        for rho in rhos:
            fed, history = _train_random(rho=rho, emd=1.0, seed=1)
            results[rho] = (fed, history)
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for rho, (fed, history) in results.items():
        rows.append({
            "setting": fed.name,
            "rho": rho,
            "tail_accuracy": round(history.tail_average_accuracy(TAIL), 3),
            "mean_bias": round(history.mean_population_bias(), 3),
        })
    print_table("Figure 2(a): accuracy vs global skew (random selection)", rows)

    # participated class proportion tracks the skewed global distribution
    fed, history = results[10.0]
    avg_pop = history.average_population_distribution()
    global_dist = fed.partition.global_distribution()
    uniform = np.full(10, 0.1)
    assert np.abs(avg_pop - global_dist).sum() < np.abs(avg_pop - uniform).sum()

    # accuracy degrades from the balanced to the most skewed setting
    accs = {rho: h.tail_average_accuracy(TAIL) for rho, (_, h) in results.items()}
    assert accs[10.0] <= accs[1.0] + 0.05


@pytest.mark.benchmark(group="fig2")
def test_fig2b_client_discrepancy(benchmark):
    """Accuracy vs client discrepancy EMD_avg at fixed ρ = 10, random selection."""
    emds = (0.0, 1.5)

    def experiment():
        return {emd: _train_random(rho=10.0, emd=emd, seed=2) for emd in emds}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for emd, (fed, history) in results.items():
        rows.append({
            "setting": fed.name,
            "emd_avg": emd,
            "achieved_emd": round(fed.partition.achieved_emd_avg(), 3),
            "tail_accuracy": round(history.tail_average_accuracy(TAIL), 3),
            "bias_std": round(float(np.std(history.population_biases())), 3),
        })
    print_table("Figure 2(b): accuracy vs client discrepancy (random selection)", rows)

    # the per-round population bias fluctuates more when clients are dissimilar
    std_iid = np.std(results[0.0][1].population_biases())
    std_noniid = np.std(results[1.5][1].population_biases())
    assert std_noniid >= std_iid - 1e-6
    # accuracy does not improve when moving from IID to extreme discrepancy
    assert (results[1.5][1].tail_average_accuracy(TAIL)
            <= results[0.0][1].tail_average_accuracy(TAIL) + 0.05)
