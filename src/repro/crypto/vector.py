"""Encrypted vectors: the wire format of Dubhe registries and distributions.

Dubhe exchanges two kinds of vectors under encryption:

* the **registry** ``R^(t,k)`` — a one-hot 0/1 vector of length
  ``l = Σ_{i∈G} C(C, i)`` (§5.1), and
* the **label distribution** ``p_l`` — a length-``C`` float vector used in
  the multi-time selection protocol (§5.3).

:class:`EncryptedVector` encrypts each component individually with Paillier
and supports element-wise homomorphic addition, which is the only operation
the server performs.  The class also reports plaintext and ciphertext wire
sizes, which drive the §6.4 overhead reproduction.
"""

from __future__ import annotations

import pickle
import random
from functools import lru_cache
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from .encoding import DEFAULT_BASE, DEFAULT_PRECISION, FixedPointEncoder
from .paillier import NoisePool, PaillierPrivateKey, PaillierPublicKey

__all__ = ["EncryptedVector", "plaintext_vector_bytes"]


@lru_cache(maxsize=None)
def _encoder_for(base: int, precision: int) -> FixedPointEncoder:
    """Shared encoder instances — one per (base, precision), not per call."""
    return FixedPointEncoder(base, precision)


@lru_cache(maxsize=4096)
def _plaintext_bytes_for_length(length: int) -> int:
    """Pickled size of a length-*length* list of floats.

    pickle encodes every float as a fixed 9-byte BINFLOAT (and does not
    memoize float objects), so the payload size depends only on the length —
    memoizing per length avoids re-pickling the vector on every stats call.
    """
    return len(pickle.dumps([0.0] * length))


def plaintext_vector_bytes(values: Sequence[float] | np.ndarray) -> int:
    """Size in bytes of the pickled plaintext vector (as a Python list).

    The paper reports plaintext registry sizes of 0.47–0.49 KB for lengths
    56/53 "in Python3", which corresponds to pickling the list of Python
    numbers; we use the same convention so the overhead comparison is
    apples-to-apples.
    """
    return _plaintext_bytes_for_length(len(values))


class EncryptedVector:
    """A vector whose components are individually Paillier-encrypted."""

    def __init__(self, public_key: PaillierPublicKey, ciphertexts: list[int],
                 base: int = DEFAULT_BASE, precision: int = DEFAULT_PRECISION):
        self.public_key = public_key
        self.ciphertexts = list(ciphertexts)
        self.base = base
        self.precision = precision

    # -- construction --------------------------------------------------------

    @staticmethod
    def encoder_for(base: int = DEFAULT_BASE,
                    precision: int = DEFAULT_PRECISION) -> FixedPointEncoder:
        """A shared, cached encoder for the given fixed-point scale."""
        return _encoder_for(base, precision)

    @classmethod
    def encrypt(cls, public_key: PaillierPublicKey,
                values: Iterable[float] | np.ndarray,
                encoder: Optional[FixedPointEncoder] = None,
                rng: Optional[random.Random] = None,
                noise: Optional[Union[NoisePool, Sequence[int]]] = None,
                ) -> "EncryptedVector":
        """Encrypt every component of *values* under *public_key*.

        When *noise* is given (a :class:`NoisePool` or a pre-drawn sequence
        of ``r^n mod n²`` terms), each component consumes one precomputed
        term instead of running a modular exponentiation.
        """
        encoder = encoder or _encoder_for(DEFAULT_BASE, DEFAULT_PRECISION)
        flat = np.asarray(list(values), dtype=float).ravel()
        if noise is None:
            rn_values = None
        elif isinstance(noise, NoisePool):
            rn_values = noise.take_many(len(flat))
        else:
            rn_values = list(noise)
            if len(rn_values) < len(flat):
                raise ValueError(f"need {len(flat)} noise terms, got {len(rn_values)}")
        # registries are mostly-zero 0/1 vectors: cache the encoded modular
        # value per distinct component so encode/to_modular run once per value
        modular_of: dict[float, int] = {}
        ciphertexts = []
        for i, v in enumerate(flat):
            v = float(v)
            modular = modular_of.get(v)
            if modular is None:
                modular = encoder.to_modular(encoder.encode(v), public_key)
                modular_of[v] = modular
            rn = rn_values[i] if rn_values is not None else None
            ciphertexts.append(public_key.raw_encrypt(modular, rng=rng, rn_value=rn))
        return cls(public_key, ciphertexts, encoder.base, encoder.precision)

    def decrypt(self, private_key: PaillierPrivateKey) -> np.ndarray:
        """Decrypt back to a float ndarray."""
        if private_key.public_key != self.public_key:
            raise ValueError("private key does not match this vector's public key")
        # hoist the modular constants out of the per-component loop
        n = self.public_key.n
        half_n = n // 2
        scale = _encoder_for(self.base, self.precision).scale
        out = np.empty(len(self.ciphertexts), dtype=float)
        for i, c in enumerate(self.ciphertexts):
            value = private_key.raw_decrypt(c)
            if value > half_n:
                value -= n
            out[i] = value / scale
        return out

    # -- homomorphic algebra --------------------------------------------------

    def _check_compatible(self, other: "EncryptedVector") -> None:
        if self.public_key != other.public_key:
            raise ValueError("cannot combine vectors encrypted under different keys")
        if len(self.ciphertexts) != len(other.ciphertexts):
            raise ValueError(
                f"length mismatch: {len(self.ciphertexts)} vs {len(other.ciphertexts)}"
            )
        if self.base != other.base or self.precision != other.precision:
            raise ValueError("cannot combine vectors with different fixed-point scales")

    def __add__(self, other: "EncryptedVector") -> "EncryptedVector":
        if not isinstance(other, EncryptedVector):
            return NotImplemented
        return self.copy().add_(other)

    def scale(self, scalar: int) -> "EncryptedVector":
        """Multiply every encrypted component by a plaintext integer scalar."""
        if not isinstance(scalar, int) or isinstance(scalar, bool):
            raise TypeError("scale expects a plaintext int scalar")
        scaled = [self.public_key.raw_mul(c, scalar) for c in self.ciphertexts]
        return EncryptedVector(self.public_key, scaled, self.base, self.precision)

    def copy(self) -> "EncryptedVector":
        """A ciphertext-level copy (safe to accumulate into in place)."""
        return EncryptedVector(self.public_key, self.ciphertexts, self.base,
                               self.precision)

    def add_(self, other: "EncryptedVector") -> "EncryptedVector":
        """In-place homomorphic addition (streaming aggregation)."""
        if not isinstance(other, EncryptedVector):
            raise TypeError("can only add another EncryptedVector")
        self._check_compatible(other)
        nsquare = self.public_key.nsquare
        own = self.ciphertexts
        theirs = other.ciphertexts
        for i in range(len(own)):
            own[i] = own[i] * theirs[i] % nsquare
        return self

    @staticmethod
    def sum(vectors: Sequence["EncryptedVector"]) -> "EncryptedVector":
        """Homomorphically sum a non-empty sequence of encrypted vectors.

        A single accumulator of modular products — no per-addend
        EncryptedVector allocations or Python-level zips.
        """
        if not vectors:
            raise ValueError("cannot sum an empty sequence of encrypted vectors")
        total = vectors[0].copy()
        for v in vectors[1:]:
            total.add_(v)
        return total

    # -- sizes / serialization -------------------------------------------------

    def __len__(self) -> int:
        return len(self.ciphertexts)

    def nbytes(self) -> int:
        """Total ciphertext wire size in bytes (components only)."""
        return len(self.ciphertexts) * self.public_key.ciphertext_bytes()

    def to_bytes(self) -> bytes:
        """Serialize ciphertexts to a compact byte string (length-prefixed)."""
        width = self.public_key.ciphertext_bytes()
        chunks = [len(self.ciphertexts).to_bytes(4, "big"), width.to_bytes(4, "big")]
        chunks.extend(c.to_bytes(width, "big") for c in self.ciphertexts)
        return b"".join(chunks)

    @classmethod
    def from_bytes(cls, public_key: PaillierPublicKey, payload: bytes,
                   base: int = DEFAULT_BASE,
                   precision: int = DEFAULT_PRECISION) -> "EncryptedVector":
        """Inverse of :meth:`to_bytes` (the receiver knows the public key)."""
        count = int.from_bytes(payload[0:4], "big")
        width = int.from_bytes(payload[4:8], "big")
        ciphertexts = []
        offset = 8
        for _ in range(count):
            ciphertexts.append(int.from_bytes(payload[offset : offset + width], "big"))
            offset += width
        return cls(public_key, ciphertexts, base, precision)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EncryptedVector(len={len(self)}, key_bits={self.public_key.key_size})"
        )
