"""The asyncio TCP server driving Dubhe rounds over real sockets.

:class:`SocketTransport` implements the :class:`~repro.transport.base.Transport`
contract over localhost (or LAN) TCP.  It owns a private asyncio event loop
on a daemon thread, so the synchronous simulation loop stays unchanged —
``run_round`` bridges into the loop with ``run_coroutine_threadsafe`` and
blocks until the round's deltas are in (or timed out).

Per-connection handling
-----------------------
Each accepted connection gets a reader task (frame parsing via
``readexactly`` on the header, then exactly the announced payload) and a
writer task draining a **bounded** send queue — a slow client applies
backpressure to its own queue without stalling the other clients or
unbounding server memory.  A frame that fails the structured wire checks
(:class:`~repro.transport.wire.CorruptFrameError` and friends) earns the
peer an :class:`~repro.transport.messages.ErrorNotice` and a disconnect —
counted per client in :attr:`SocketTransport.decode_failures` and
:attr:`SocketTransport.disconnects`, surfaced per round on the
:class:`~repro.federated.history.RoundRecord`, so a silently-dropped peer
always leaves a trace in the run record.

Liveness and session resumption
-------------------------------
Every connection runs a **health state machine** (``healthy`` → ``degraded``
→ ``dead``): the server probes each client with a
:class:`~repro.transport.messages.Heartbeat` every ``heartbeat_interval``
seconds, and any inbound traffic (a :class:`~repro.transport.messages.
HeartbeatAck` or a protocol message) proves liveness.  A connection silent
for ``heartbeat_interval * heartbeat_limit`` seconds is declared dead and
torn down — a half-open TCP connection is detected well before the round
deadline instead of stalling the round until ``round_timeout``.

Registration issues a **session token** (echoed in the
:class:`~repro.transport.messages.RegisterAck`).  A client that loses its
connection mid-round may reconnect, present the token, and resume: it keeps
its cohort position, any in-flight
:class:`~repro.transport.messages.SelectionNotice` is replayed, and its
:class:`~repro.transport.messages.ModelDelta` is deduplicated by
``(round, client, token)`` so a retransmit is aggregated exactly once.  The
reply window of a disconnected client therefore stays open until the round
deadline — only a heartbeat-confirmed death fails it early.

Round protocol
--------------
``run_round`` waits (capped, jittered backoff via
:class:`~repro.core.retry.RetryPolicy`, bounded by ``connect_timeout`` /
``retries``) until every cohort client is registered, resolves injected
faults *server-side* — a client marked as dropped by the scenario's
:class:`~repro.scenarios.engine.FaultInjector` is never dispatched to, so
scenario outcomes are byte-identical across back-ends — then sends each
survivor a :class:`~repro.transport.messages.SelectionNotice` and awaits
their :class:`~repro.transport.messages.ModelDelta` replies under
``round_timeout``.  A client that misses the deadline while still connected
is recorded as a ``"straggler"``; one that is gone (and never reconnected in
time) as ``"offline"`` (both members of
:data:`repro.scenarios.engine.FAILURE_CAUSES`), and the partial survivor
set flows into :meth:`repro.federated.server.FederatedServer.aggregate`'s
``expected_count`` / ``min_participation`` skip policy exactly like an
injected fault would.

When the transport is built with a
:class:`~repro.scenarios.spec.NetworkSpec`, a
:class:`~repro.transport.chaos.ChaosProxy` is interposed: :attr:`address`
is the proxy's address, and every client byte crosses the fault-inducing
relay while the server itself stays oblivious.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
from typing import Callable, Dict, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.config import TransportConfig
from ..federated.client import FederatedClient, LocalTrainingConfig
from ..nn.module import Module
from .base import Transport
from .messages import (
    ErrorNotice,
    Heartbeat,
    HeartbeatAck,
    ModelDelta,
    PackedCiphertextUpload,
    ProbabilityBroadcast,
    Register,
    RegisterAck,
    RoundResult,
    SelectionNotice,
    Shutdown,
    encode_message,
)
from .wire import WireError, frame_header

__all__ = ["SocketTransport", "TransportClosedError", "TransportError"]

StateDict = dict[str, np.ndarray]

#: wire-frame header size (magic + version + type + length)
_HEADER_SIZE = 8
#: wire-frame trailer size (crc32)
_TRAILER_SIZE = 4

#: key for decode failures on connections that never registered
_UNKNOWN_CLIENT = -1


class TransportError(RuntimeError):
    """A round could not be driven over the socket transport."""


class TransportClosedError(TransportError):
    """The transport was closed while a round was still pending."""


class _ClientSession:
    """Server-side state of one connected client (private)."""

    def __init__(self, writer: asyncio.StreamWriter, send_queue: int,
                 now: float):
        self.writer = writer
        self.queue: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue(maxsize=send_queue)
        self.client_id: Optional[int] = None
        self.position: Optional[int] = None
        self.token = ""
        #: liveness state machine: "healthy" -> "degraded" -> "dead"
        self.health = "healthy"
        #: loop time of the last inbound frame (any traffic proves liveness)
        self.last_seen = now
        self.heartbeat_seq = 0
        self.closed = False

    async def send(self, message) -> None:
        """Enqueue a message (blocks when the bounded queue is full)."""
        if not self.closed:
            await self.queue.put(encode_message(message))

    def try_send(self, message) -> bool:
        """Enqueue without blocking; ``False`` when the queue is full."""
        if self.closed:
            return False
        try:
            self.queue.put_nowait(encode_message(message))
        except asyncio.QueueFull:
            return False
        return True

    async def drain(self) -> None:
        """Writer task body: flush queued frames to the socket in order."""
        try:
            while True:
                frame = await self.queue.get()
                if frame is None:
                    break
                self.writer.write(frame)
                await self.writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass

    def close(self) -> None:
        """Tear down the connection (safe to call twice)."""
        if self.closed:
            return
        self.closed = True
        try:
            self.writer.close()
        except Exception:
            pass


async def _read_message(reader: asyncio.StreamReader, max_frame_bytes: int):
    """Read exactly one protocol message off a stream.

    Validates the header (magic/version/length cap) before allocating the
    payload, then runs the full structured decode including the CRC.
    """
    from .messages import decode_message

    head = await reader.readexactly(_HEADER_SIZE)
    _, length = frame_header(head, max_frame_bytes)
    body = await reader.readexactly(length + _TRAILER_SIZE)
    message, _ = decode_message(head + body)
    return message


class SocketTransport(Transport):
    """Drive Dubhe rounds over TCP against :class:`~repro.transport.client.
    TransportClient` peers.

    The server starts lazily (first ``run_round`` or an explicit
    :meth:`start`) and binds ``config.host:config.port`` — port ``0`` picks
    a free port, readable from :attr:`address`.  Fault-free rounds under
    float64 are bit-identical to the in-process sequential executor: the
    remote peers run the very same
    :meth:`~repro.federated.client.FederatedClient.local_train` from the
    very same broadcast state.

    With a *network* spec the transport interposes a
    :class:`~repro.transport.chaos.ChaosProxy` seeded with *chaos_seed*
    (conventionally the scenario seed): :attr:`address` becomes the proxy's
    address and real wire faults surface through the same failure records
    as injected ones.

    Example
    -------
    >>> from repro.core.config import TransportConfig
    >>> transport = SocketTransport(TransportConfig(kind="socket", port=0))
    >>> host, port = transport.start()
    >>> port > 0
    True
    >>> transport.close()
    """

    def __init__(self, config: Optional[TransportConfig] = None,
                 network=None, chaos_seed: int = 0):
        super().__init__()
        self.config = config or TransportConfig(kind="socket")
        #: optional :class:`~repro.scenarios.spec.NetworkSpec` driving a
        #: chaos proxy in front of the server
        self.network = network
        self.chaos_seed = int(chaos_seed)
        #: the interposed :class:`~repro.transport.chaos.ChaosProxy`
        #: (``None`` without a network spec or before :meth:`start`)
        self.proxy = None
        #: public ``(host, port)`` clients should dial (the proxy's address
        #: when a network spec is set; after :meth:`start`)
        self.address: Optional[Tuple[str, int]] = None
        #: the server socket's own bind address (behind the proxy)
        self.bind_address: Optional[Tuple[str, int]] = None
        #: encrypted uploads received so far: client_id -> tag -> vector
        self.uploads: "Dict[int, dict]" = {}
        #: cumulative malformed-frame counts per client id (-1 = a
        #: connection that never registered)
        self.decode_failures: "Dict[int, int]" = {}
        #: cumulative latest disconnect cause per client id
        self.disconnects: "Dict[int, str]" = {}
        #: total ModelDelta retransmits ignored by the (round, client,
        #: token) dedup — every one of these would have double-aggregated
        self.duplicate_deltas = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._sessions: "Dict[int, _ClientSession]" = {}
        self._pending: "Dict[Tuple[int, int], asyncio.Future]" = {}
        self._round_notices: "Dict[Tuple[int, int], SelectionNotice]" = {}
        self._seen_deltas: "Set[Tuple[int, int, str]]" = set()
        self._tokens: "Dict[int, str]" = {}
        self._positions: "Dict[int, int]" = {}
        self._next_token = 0
        self._round_decode: "Dict[int, int]" = {}
        self._round_disconnects: "Dict[int, str]" = {}
        self._round_task: Optional["asyncio.Task"] = None
        self._roster_changed: Optional[asyncio.Event] = None
        self._closing = False

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind the listening socket and return the public ``(host, port)``.

        Idempotent: a started transport returns its existing address.  The
        event loop runs on a daemon thread, so the caller's thread (the
        simulation loop) never blocks on socket readiness.  With a network
        spec the chaos proxy is started in front of the server and its
        address returned instead.

        Example
        -------
        >>> from repro.core.config import TransportConfig
        >>> transport = SocketTransport(TransportConfig(kind="socket"))
        >>> transport.start() == transport.address
        True
        >>> transport.close()
        """
        if self._loop is not None:
            assert self.address is not None
            return self.address
        self._closing = False
        loop = asyncio.new_event_loop()
        thread = threading.Thread(target=loop.run_forever,
                                  name="repro-transport-server", daemon=True)
        thread.start()
        self._loop = loop
        self._thread = thread
        future = asyncio.run_coroutine_threadsafe(self._start_async(), loop)
        self.bind_address = future.result(timeout=self.config.connect_timeout)
        if self.network is not None:
            from .chaos import ChaosProxy  # local: optional dependency edge

            self.proxy = ChaosProxy(
                self.bind_address, spec=self.network, seed=self.chaos_seed,
                host=self.config.host,
                max_frame_bytes=self.config.max_frame_bytes)
            self.address = self.proxy.start()
        else:
            self.address = self.bind_address
        return self.address

    async def _start_async(self) -> Tuple[str, int]:
        self._roster_changed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host,
            port=self.config.port)
        if self.config.heartbeat_interval > 0:
            asyncio.ensure_future(self._heartbeat_loop())
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    def close(self) -> None:
        """Stop the server, notifying clients and failing any pending round.

        Idempotent and safe to call from any thread at any time — including
        while a round is mid-flight: pending reply futures are cancelled
        (the blocked ``run_round`` raises :class:`TransportClosedError`
        instead of hanging), every client gets a best-effort
        :class:`~repro.transport.messages.Shutdown`, and the loop thread is
        joined.  The chaos proxy (when present) is closed *after* the
        server, so shutdown frames are still relayed to the fleet.

        Example
        -------
        >>> from repro.core.config import TransportConfig
        >>> transport = SocketTransport(TransportConfig(kind="socket"))
        >>> transport.close()  # never started: a no-op
        >>> transport.close()
        """
        loop, thread = self._loop, self._thread
        # latch even when never started: a closed transport stays closed
        # until someone explicitly start()s it again
        self._closing = True
        if loop is None:
            return
        try:
            future = asyncio.run_coroutine_threadsafe(self._shutdown_async(), loop)
            future.result(timeout=self.config.connect_timeout)
        except Exception:
            pass  # a wedged loop still gets stopped below
        loop.call_soon_threadsafe(loop.stop)
        if thread is not None:
            thread.join(timeout=self.config.connect_timeout)
        if not loop.is_running() and not loop.is_closed():
            loop.close()
        if self.proxy is not None:
            self.proxy.close()
            self.proxy = None
        self._loop = None
        self._thread = None
        self._server = None
        self._sessions = {}
        self._pending = {}
        self._round_notices = {}
        self.address = None
        self.bind_address = None

    async def _shutdown_async(self) -> None:
        # a round blocked in its registration wait holds no pending futures
        # yet: cancel it eagerly (the bridging future surfaces the cancel as
        # TransportClosedError) rather than letting it ride out the reader
        # grace window below and time out on its own
        round_task = self._round_task
        self._round_task = None
        if round_task is not None and not round_task.done():
            round_task.cancel()
            await asyncio.gather(round_task, return_exceptions=True)
        for future in list(self._pending.values()):
            if not future.done():
                future.cancel()
        self._pending.clear()
        notice = Shutdown("server closing")
        for session in list(self._sessions.values()):
            try:
                # bypass the bounded queue: shutdown must not block on a
                # slow client's backlog
                session.writer.write(encode_message(notice))
                await asyncio.wait_for(session.writer.drain(), timeout=1.0)
            except Exception:
                pass
            session.close()
        self._sessions.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # reap the per-connection reader/writer tasks (and the heartbeat
        # loop) before the loop stops, so none are destroyed while pending.
        # The session writers just closed, so readers exit on their own
        # within the grace window; cancelling a reader still parked in
        # readexactly would make the streams-internal done-callback re-raise
        # CancelledError into the loop's exception handler (noisy on 3.11)
        current = asyncio.current_task()
        leftovers = [task for task in asyncio.all_tasks()
                     if task is not current]
        if leftovers:
            _, pending = await asyncio.wait(leftovers, timeout=1.0)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    # -- liveness ---------------------------------------------------------------

    async def _heartbeat_loop(self) -> None:
        """Probe every connection; tear down the ones that went silent.

        A session that fails to show *any* inbound traffic for
        ``heartbeat_interval * heartbeat_limit`` seconds transitions to
        ``"dead"``: its pending reply future fails immediately (the round
        does not wait out ``round_timeout`` for a half-open socket), its
        disconnect is recorded with cause ``"heartbeat"``, and the
        connection is closed.  One silent interval marks it ``"degraded"``.
        """
        assert self._loop is not None
        interval = self.config.heartbeat_interval
        dead_after = interval * self.config.heartbeat_limit
        try:
            while not self._closing:
                await asyncio.sleep(interval)
                now = self._loop.time()
                for client_id, session in list(self._sessions.items()):
                    silent = now - session.last_seen
                    if silent >= dead_after:
                        session.health = "dead"
                        self._record_disconnect(client_id, "heartbeat")
                        self._fail_pending_for(
                            client_id, "declared dead by heartbeat")
                        if self._sessions.get(client_id) is session:
                            del self._sessions[client_id]
                        session.close()
                        continue
                    session.health = ("degraded" if silent >= interval
                                      else session.health)
                    session.heartbeat_seq += 1
                    # best-effort: a full queue is backpressure, not death —
                    # the peer's next protocol message proves it alive
                    session.try_send(Heartbeat(session.heartbeat_seq))
        except asyncio.CancelledError:
            pass

    def client_health(self, client_id: int) -> Optional[str]:
        """The health state of *client_id*'s connection (``None`` if absent).

        Example
        -------
        >>> from repro.core.config import TransportConfig
        >>> transport = SocketTransport(TransportConfig(kind="socket"))
        >>> transport.client_health(0) is None
        True
        """
        session = self._sessions.get(client_id)
        return None if session is None else session.health

    # -- connection handling ----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        assert self._loop is not None
        session = _ClientSession(writer, self.config.send_queue,
                                 now=self._loop.time())
        drain_task = asyncio.ensure_future(session.drain())
        cause = "connection_lost"
        try:
            while True:
                message = await _read_message(reader, self.config.max_frame_bytes)
                session.last_seen = self._loop.time()
                session.health = "healthy"
                await self._dispatch(session, message)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass  # client went away
        except WireError as exc:
            cause = "corrupt_frame"
            key = (session.client_id if session.client_id is not None
                   else _UNKNOWN_CLIENT)
            self.decode_failures[key] = self.decode_failures.get(key, 0) + 1
            self._round_decode[key] = self._round_decode.get(key, 0) + 1
            try:
                writer.write(encode_message(ErrorNotice(str(exc))))
                await asyncio.wait_for(writer.drain(), timeout=1.0)
            except Exception:
                pass
        except asyncio.CancelledError:
            raise
        finally:
            drain_task.cancel()
            session.close()
            if session.client_id is not None:
                if self._sessions.get(session.client_id) is session:
                    del self._sessions[session.client_id]
                    self._record_disconnect(session.client_id, cause)
                # a session no longer registered was already torn down with
                # its own cause (heartbeat death, or replaced by a reconnect)
                # NOTE: pending reply futures are deliberately NOT failed
                # here — the reconnect window stays open until the round
                # deadline (only the heartbeat declares a client dead early)

    def _record_disconnect(self, client_id: int, cause: str) -> None:
        """Remember why a client's connection ended (first cause per round)."""
        self.disconnects[client_id] = cause
        self._round_disconnects.setdefault(client_id, cause)

    def _fail_pending_for(self, client_id: int, why: str) -> None:
        """Fail a client's outstanding reply futures (heartbeat death)."""
        for (round_index, cid), future in list(self._pending.items()):
            if cid == client_id and not future.done():
                future.set_exception(
                    TransportError(f"client {client_id}: {why}")
                )

    async def _dispatch(self, session: _ClientSession, message) -> None:
        if isinstance(message, Register):
            stale = self._sessions.get(message.client_id)
            if stale is not None and stale is not session:
                stale.close()  # reconnect replaces the old connection
            resumed = bool(message.token) and (
                self._tokens.get(message.client_id) == message.token)
            if resumed:
                token = message.token
            else:
                self._next_token += 1
                token = f"s{self._next_token}"
                self._tokens[message.client_id] = token
            position = self._positions.get(message.client_id)
            if position is None:
                position = len(self._positions)
                self._positions[message.client_id] = position
            session.client_id = message.client_id
            session.token = token
            session.position = position
            self._sessions[message.client_id] = session
            assert self._roster_changed is not None
            self._roster_changed.set()
            await session.send(RegisterAck(message.client_id, position,
                                           len(self._sessions), token=token,
                                           resumed=resumed))
            # replay any in-flight selection this client has not answered:
            # a reconnecting peer (resumed or freshly re-registered) rejoins
            # the round instead of missing its own deadline
            for (round_index, cid), future in list(self._pending.items()):
                if cid == message.client_id and not future.done():
                    notice = self._round_notices.get((round_index, cid))
                    if notice is not None:
                        await session.send(notice)
        elif isinstance(message, PackedCiphertextUpload):
            self.uploads.setdefault(message.client_id, {})[message.tag] = \
                message.vector
        elif isinstance(message, ModelDelta):
            key = (message.round_index, message.client_id, message.token)
            if key in self._seen_deltas:
                self.duplicate_deltas += 1
                return
            self._seen_deltas.add(key)
            future = self._pending.get((message.round_index, message.client_id))
            if future is not None and not future.done():
                future.set_result(message.state)
            else:
                # an answered (or closed) round: a fresh-token retransmit
                # still must not double-aggregate
                self.duplicate_deltas += 1
        elif isinstance(message, HeartbeatAck):
            session.health = "healthy"  # last_seen already updated
        elif isinstance(message, ErrorNotice):
            self.last_fallback_reason = f"client error: {message.detail}"
        # other message types are server→client only; ignore echoes

    # -- protocol broadcasts ----------------------------------------------------

    def broadcast_probabilities(self, round_index: int,
                                probabilities: Sequence[float]) -> None:
        """Send every registered client this round's ``q_k`` probabilities.

        Example
        -------
        >>> from repro.core.config import TransportConfig
        >>> transport = SocketTransport(TransportConfig(kind="socket"))
        >>> transport.start() is not None
        True
        >>> transport.broadcast_probabilities(0, [0.5, 0.5])  # no clients: no-op
        >>> transport.close()
        """
        message = ProbabilityBroadcast(round_index,
                                       tuple(float(p) for p in probabilities))
        self._broadcast(message)

    def on_round_complete(self, record) -> None:
        """Broadcast the closed round's outcome as a ``RoundResult``.

        Example
        -------
        >>> from repro.core.config import TransportConfig
        >>> transport = SocketTransport(TransportConfig(kind="socket"))
        >>> transport.start() is not None
        True
        >>> transport.close()
        """
        message = RoundResult(
            round_index=record.round_index,
            skipped=bool(record.aggregation_skipped),
            accuracy=record.test_accuracy,
            failures=dict(record.failures),
        )
        self._broadcast(message)

    def _broadcast(self, message) -> None:
        if self._loop is None or self._closing:
            return

        async def _send_all() -> None:
            for session in list(self._sessions.values()):
                await session.send(message)

        try:
            asyncio.run_coroutine_threadsafe(_send_all(), self._loop).result(
                timeout=self.config.connect_timeout)
        except (concurrent.futures.TimeoutError, TimeoutError):
            # broadcasts are advisory; a saturated client queue (backpressure)
            # must not fail the round
            self.last_fallback_reason = "broadcast timed out on a full queue"

    # -- the round --------------------------------------------------------------

    def run_round(self, clients: Sequence[FederatedClient],
                  model_factory: Callable[[], Module],
                  global_state: StateDict,
                  config: LocalTrainingConfig,
                  round_index: int = 0,
                  faults=None) -> "list[StateDict]":
        """Dispatch the cohort's selection notices and collect their deltas.

        Mirrors :meth:`repro.federated.executor.LocalUpdateExecutor.run_round`:
        returns the survivors' states in cohort order; injected *faults* are
        resolved server-side (failed positions are never dispatched), real
        deadline misses become ``"straggler"`` and vanished clients
        ``"offline"`` in :attr:`last_round_failures`, with the round's
        malformed-frame counts and disconnect causes snapshotted into
        :attr:`last_round_decode_failures` / :attr:`last_round_disconnects`.

        Example
        -------
        >>> from repro.core.config import TransportConfig
        >>> transport = SocketTransport(TransportConfig(kind="socket"))
        >>> transport.run_round([], lambda: None, {}, LocalTrainingConfig())
        []
        >>> transport.close()
        """
        self.last_round_failures = {}
        self.last_round_decode_failures = {}
        self.last_round_disconnects = {}
        self.last_round_delay = 0.0
        self.last_fallback_reason = None
        if not clients:
            return []
        if self._closing:
            raise TransportClosedError("transport is closed")
        self.start()
        assert self._loop is not None
        injected: dict[int, str] = {}
        if faults is not None:
            injected = {p: c for p, c in faults.resolve().items()
                        if p < len(clients)}
            self.last_round_delay = faults.round_delay()
        ids = [client.client_id for client in clients]
        future = asyncio.run_coroutine_threadsafe(
            self._run_round_async(ids, global_state, config, round_index,
                                  injected),
            self._loop,
        )
        budget = self.config.connect_timeout * (self.config.retries + 2)
        if self.config.round_timeout is not None:
            budget += self.config.round_timeout
            result_timeout: Optional[float] = budget
        else:
            result_timeout = None
        try:
            states_by_position, real_failures, decode, disconnects = \
                future.result(timeout=result_timeout)
        except (asyncio.CancelledError, concurrent.futures.CancelledError):
            # the bridging future raises the concurrent.futures flavour,
            # which is not the asyncio class on every interpreter
            raise TransportClosedError(
                f"transport closed while round {round_index} was pending"
            )
        except (concurrent.futures.TimeoutError, TimeoutError):
            future.cancel()
            raise TransportError(
                f"round {round_index} did not complete within the "
                f"{budget:.1f}s transport budget"
            )
        self.last_round_failures = dict(injected)
        self.last_round_failures.update(real_failures)
        self.last_round_decode_failures = decode
        self.last_round_disconnects = disconnects
        survivors = [p for p in range(len(clients))
                     if p not in self.last_round_failures]
        # remote peers incremented their own participation counters; mirror
        # that on the simulation-side stubs so bookkeeping matches in-process
        for position in survivors:
            clients[position].rounds_participated += 1
        return [states_by_position[p] for p in survivors]

    async def _run_round_async(self, ids: Sequence[int],
                               global_state: StateDict,
                               config: LocalTrainingConfig,
                               round_index: int,
                               injected: "dict[int, str]"):
        self._round_task = asyncio.current_task()
        self._round_decode = {}
        self._round_disconnects = {}
        await self._wait_for_clients(ids)
        assert self._loop is not None
        deadline = self.config.round_timeout
        pending: "dict[int, tuple[int, asyncio.Future]]" = {}
        for position, client_id in enumerate(ids):
            if position in injected:
                continue  # resolved server-side: dropped clients never train
            reply: asyncio.Future = self._loop.create_future()
            self._pending[(round_index, client_id)] = reply
            notice = SelectionNotice(round_index=round_index,
                                     client_id=client_id, config=config,
                                     state=global_state, deadline=deadline)
            self._round_notices[(round_index, client_id)] = notice
            session = self._sessions.get(client_id)
            if session is not None:
                await session.send(notice)
            # a client that disconnected after registration gets the notice
            # replayed when (if) it reconnects before the deadline
            pending[position] = (client_id, reply)
        real_failures: "dict[int, str]" = {}
        states: "dict[int, StateDict]" = {}
        if pending:
            await asyncio.wait([reply for _, reply in pending.values()],
                               timeout=deadline)
        for position, (client_id, reply) in pending.items():
            self._pending.pop((round_index, client_id), None)
            self._round_notices.pop((round_index, client_id), None)
            if reply.cancelled():
                raise asyncio.CancelledError()
            if reply.done() and reply.exception() is None:
                states[position] = reply.result()
            elif reply.done():
                reply.exception()  # consume it (heartbeat-declared death)
                real_failures[position] = "offline"
            else:
                reply.cancel()
                # deadline passed: a client still connected just ran long;
                # one that vanished (and never reconnected) is offline
                real_failures[position] = (
                    "straggler" if client_id in self._sessions else "offline")
        self._seen_deltas = {key for key in self._seen_deltas
                             if key[0] != round_index}
        return (states, real_failures, dict(self._round_decode),
                dict(self._round_disconnects))

    async def _wait_for_clients(self, ids: Sequence[int]) -> None:
        """Wait until every cohort client is registered (backoff + deadline)."""
        assert self._loop is not None and self._roster_changed is not None
        policy = self.config.retry_policy()
        deadline = self._loop.time() + self.config.connect_timeout
        attempt = 0
        while True:
            missing = [cid for cid in ids if cid not in self._sessions]
            if not missing:
                return
            remaining = deadline - self._loop.time()
            if remaining <= 0 or attempt > self.config.retries:
                raise TransportError(
                    f"clients {missing} never registered within "
                    f"{self.config.connect_timeout}s "
                    f"({attempt} waits, backoff {self.config.backoff}s)"
                )
            step = min(max(policy.delay(attempt), 0.001), remaining)
            self._roster_changed.clear()
            try:
                await asyncio.wait_for(self._roster_changed.wait(),
                                       timeout=step)
            except asyncio.TimeoutError:
                attempt += 1
