"""Seeded chaos proxy: real network faults, reproducibly, on localhost TCP.

The :class:`~repro.scenarios.engine.FaultInjector` *simulates* faults inside
the round loop; :class:`ChaosProxy` *induces* them on the wire.  It is a
frame-aware TCP relay that sits between a fleet of
:class:`~repro.transport.client.TransportClient` peers and a
:class:`~repro.transport.server.SocketTransport` server, driven by a
declarative :class:`~repro.scenarios.spec.NetworkSpec`: fixed latency and
exponential jitter, bandwidth caps, single-bit frame flips, mid-frame
truncation, abrupt connection resets and one-way partitions.

Determinism is the design anchor, inherited from the fault injector: every
probabilistic decision is drawn from an RNG keyed by
``(seed, round, client, direction, frame ordinal)``, so two runs with the
same seed damage the same frames of the same clients in the same rounds —
and the failures the server records are byte-identical across repeats.
The proxy learns the ``(round, client)`` coordinates by sniffing the frames
it relays (``Register`` carries the client id; ``SelectionNotice`` /
``ModelDelta`` carry the round index), never by decoding payloads.

Two deliberate policies keep induced chaos well-defined:

* **corruption ends the connection** — after forwarding a flipped or
  truncated frame the proxy closes both legs.  The receiver sees exactly one
  damaged frame (a structured :class:`~repro.transport.wire.CorruptFrameError`
  on decode) followed by EOF, never a desynchronised byte stream;
* **the handshake is exempt from partitions** — ``Register`` /
  ``RegisterAck`` / ``Shutdown`` / ``ErrorNotice`` frames always pass, so a
  partitioned client still joins the federation (and later learns the run is
  over); only its *round* traffic is discarded, which is what surfaces as an
  ``"offline"`` or ``"straggler"`` failure in the round record.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

import numpy as np

from ..scenarios.spec import NetworkSpec
from .wire import DEFAULT_MAX_FRAME_BYTES, WireError, frame_header

__all__ = ["ChaosProxy"]

#: Frame header + trailing CRC sizes (mirrors ``repro.transport.wire``).
_HEADER_SIZE = 8
_CRC_SIZE = 4

#: Message type codes the proxy sniffs (kept in sync with
#: :data:`repro.transport.messages.MESSAGE_TYPES` by the test suite).
_TYPE_REGISTER = 1
_TYPE_REGISTER_ACK = 2
_TYPE_PROBABILITIES = 4
_TYPE_SELECTION = 5
_TYPE_DELTA = 6
_TYPE_RESULT = 7
_TYPE_SHUTDOWN = 8
_TYPE_ERROR = 9

#: Frames that must always pass (never partitioned): the join handshake and
#: the teardown — chaos targets *round* traffic, not the federation's
#: existence.
_HANDSHAKE_TYPES = frozenset(
    {_TYPE_REGISTER, _TYPE_REGISTER_ACK, _TYPE_SHUTDOWN, _TYPE_ERROR}
)

#: Direction codes folded into the RNG key (client → server and back).
_DIR_TO_SERVER = 0
_DIR_TO_CLIENT = 1

#: RNG client slot used before a connection has sniffed its Register (the
#: proxy has no client id yet); offset far above any real cohort id.
_UNKNOWN_CLIENT_BASE = 1 << 20


def _read_u32(payload: bytes, offset: int = 0) -> Optional[int]:
    if len(payload) < offset + 4:
        return None
    return int.from_bytes(payload[offset:offset + 4], "big")


class _Relay:
    """One proxied connection: two directional frame pumps sharing state."""

    def __init__(self, proxy: "ChaosProxy", index: int):
        self.proxy = proxy
        self.index = index
        self.client_id: Optional[int] = None
        self.round_index = 0
        # per (round, direction) frame ordinal — reset when the sniffed
        # round advances so the RNG key stays aligned across repeat runs
        # regardless of how earlier rounds interleaved
        self.ordinals = {_DIR_TO_SERVER: 0, _DIR_TO_CLIENT: 0}

    def _advance_round(self, round_index: int) -> None:
        if round_index > self.round_index:
            self.round_index = round_index
            self.ordinals = {_DIR_TO_SERVER: 0, _DIR_TO_CLIENT: 0}

    def sniff(self, direction: int, msg_type: int, payload: bytes) -> None:
        """Learn (round, client) coordinates from a relayed frame."""
        if direction == _DIR_TO_SERVER and msg_type == _TYPE_REGISTER:
            client_id = _read_u32(payload)
            if client_id is not None:
                self.client_id = client_id
        elif msg_type in (_TYPE_PROBABILITIES, _TYPE_SELECTION, _TYPE_DELTA,
                          _TYPE_RESULT):
            round_index = _read_u32(payload)
            if round_index is not None:
                self._advance_round(round_index)

    def rng_key(self, direction: int) -> "list[int]":
        client = (self.client_id if self.client_id is not None
                  else _UNKNOWN_CLIENT_BASE + self.index)
        ordinal = self.ordinals[direction]
        self.ordinals[direction] = ordinal + 1
        return [self.proxy.seed, self.round_index, client, direction, ordinal]


class ChaosProxy:
    """A deterministic fault-inducing TCP relay for the Dubhe wire protocol.

    Point clients at :attr:`address` instead of the real server and every
    byte of the round protocol crosses two extra sockets, subject to the
    faults declared in the :class:`~repro.scenarios.spec.NetworkSpec`.  With
    an empty spec (or ``spec=None``) the proxy is the **zero-fault
    identity**: every frame is forwarded untouched and a proxied run is
    bit-identical to a direct-socket one (asserted in CI).

    The proxy runs its own asyncio loop on a daemon thread, exactly like
    :class:`~repro.transport.server.SocketTransport`, so it composes with
    the blocking round-loop API without sharing an event loop.

    Example
    -------
    >>> from repro.scenarios.spec import NetworkSpec
    >>> proxy = ChaosProxy(("127.0.0.1", 9), spec=NetworkSpec())
    >>> proxy.spec.is_empty()
    True
    """

    def __init__(self, upstream: "tuple[str, int]",
                 spec: Optional[NetworkSpec] = None, seed: int = 0,
                 host: str = "127.0.0.1", port: int = 0,
                 max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES):
        self.upstream = (str(upstream[0]), int(upstream[1]))
        self.spec = spec if spec is not None else NetworkSpec()
        if not isinstance(self.spec, NetworkSpec):
            raise TypeError("spec must be a NetworkSpec (or None)")
        self.seed = int(seed)
        self.host = host
        self.port = int(port)
        self.max_frame_bytes = int(max_frame_bytes)
        #: ``(round, client, direction, kind)`` tuples of every induced
        #: fault, in decision order — the observable the determinism tests
        #: compare across repeat runs.
        self.events: "list[tuple[int, int, str, str]]" = []
        self.address: Optional[tuple[str, int]] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._relay_count = 0
        self._closing = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "tuple[str, int]":
        """Bind the relay and return its public ``(host, port)`` address.

        Example
        -------
        >>> ChaosProxy(("127.0.0.1", 9)).start  # doctest: +ELLIPSIS
        <bound method ChaosProxy.start of ...>
        """
        if self._thread is not None:
            if self.address is None:
                raise RuntimeError("proxy failed to start")
            return self.address
        started = threading.Event()
        failure: "list[BaseException]" = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                self._server = loop.run_until_complete(
                    asyncio.start_server(self._handle, self.host, self.port))
                self.address = self._server.sockets[0].getsockname()[:2]
            except BaseException as exc:  # pragma: no cover - bind failure
                failure.append(exc)
                started.set()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                for task in asyncio.all_tasks(loop):
                    task.cancel()
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(target=runner, name="chaos-proxy",
                                        daemon=True)
        self._thread.start()
        started.wait()
        if failure:
            raise failure[0]
        assert self.address is not None
        return self.address

    def close(self) -> None:
        """Stop relaying and tear down every proxied connection.

        Idempotent; safe to call on a proxy that never started.

        Example
        -------
        >>> ChaosProxy(("127.0.0.1", 9)).close()
        """
        self._closing = True
        loop, thread = self._loop, self._thread
        if loop is None or thread is None or not thread.is_alive():
            return

        async def shutdown() -> None:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()

        asyncio.run_coroutine_threadsafe(shutdown(), loop).result(timeout=10)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)

    def __enter__(self) -> "ChaosProxy":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- relay -------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        relay = _Relay(self, self._relay_count)
        self._relay_count += 1
        try:
            up_reader, up_writer = await asyncio.open_connection(*self.upstream)
        except OSError:
            writer.close()
            return
        pumps = [
            asyncio.ensure_future(self._pump(relay, _DIR_TO_SERVER, reader,
                                             up_writer)),
            asyncio.ensure_future(self._pump(relay, _DIR_TO_CLIENT, up_reader,
                                             writer)),
        ]
        try:
            await asyncio.wait(pumps, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for pump in pumps:
                pump.cancel()
            for w in (writer, up_writer):
                try:
                    w.close()
                except Exception:
                    pass

    async def _read_frame(self, reader: asyncio.StreamReader) -> "tuple[bytes, int, bytes]":
        """One complete frame: ``(raw bytes, msg_type, payload)``."""
        header = await reader.readexactly(_HEADER_SIZE)
        msg_type, length = frame_header(header, self.max_frame_bytes)
        rest = await reader.readexactly(length + _CRC_SIZE)
        return header + rest, msg_type, rest[:length]

    def _record(self, relay: _Relay, direction: int, kind: str) -> None:
        client = relay.client_id if relay.client_id is not None else -1
        name = "to_server" if direction == _DIR_TO_SERVER else "to_client"
        self.events.append((relay.round_index, client, name, kind))

    def _partitioned(self, relay: _Relay, direction: int, msg_type: int) -> bool:
        if relay.client_id is None or msg_type in _HANDSHAKE_TYPES:
            return False
        cut = self.spec.partitions.get(relay.client_id)
        if cut is None:
            return False
        name = "to_server" if direction == _DIR_TO_SERVER else "to_client"
        return cut == "both" or cut == name

    async def _pump(self, relay: _Relay, direction: int,
                    reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter) -> None:
        spec = self.spec
        try:
            while not self._closing:
                try:
                    raw, msg_type, payload = await self._read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    return
                except WireError:
                    # hostile/damaged bytes from a peer: forward nothing,
                    # cut the relayed connection (the endpoints handle the
                    # resulting EOF with their own structured errors)
                    return
                relay.sniff(direction, msg_type, payload)
                if self._partitioned(relay, direction, msg_type):
                    self._record(relay, direction, "partition")
                    continue  # silently discard, keep the connection open
                rng = np.random.default_rng(relay.rng_key(direction))
                # fixed draw order so one decision never shifts the next
                # frame's randomness: reset, flip, truncate, jitter
                u_reset, u_flip, u_trunc = rng.random(3)
                if spec.reset_probability and u_reset < spec.reset_probability:
                    self._record(relay, direction, "reset")
                    return
                if spec.flip_probability and u_flip < spec.flip_probability:
                    bit = int(rng.integers(0, len(raw) * 8))
                    damaged = bytearray(raw)
                    damaged[bit // 8] ^= 1 << (bit % 8)
                    self._record(relay, direction, "flip")
                    writer.write(bytes(damaged))
                    await writer.drain()
                    return  # corruption ends the connection (see module doc)
                if spec.truncate_probability and u_trunc < spec.truncate_probability:
                    cut = int(rng.integers(1, len(raw)))
                    self._record(relay, direction, "truncate")
                    writer.write(raw[:cut])
                    await writer.drain()
                    return
                delay = spec.latency
                if spec.jitter:
                    delay += float(rng.exponential(spec.jitter))
                if spec.bandwidth:
                    delay += len(raw) / spec.bandwidth
                if delay > 0:
                    await asyncio.sleep(delay)
                writer.write(raw)
                await writer.drain()
        except (ConnectionError, OSError, asyncio.CancelledError):
            return
