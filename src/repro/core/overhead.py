"""Encryption and communication overhead accounting (§6.4 of the paper).

The paper argues Dubhe's overhead is negligible next to model training and
model-weight transfer.  Its evidence is a handful of concrete numbers:

* plaintext registry of length 56/53 ≈ 0.47–0.49 KB; Paillier-2048 ciphertext
  ≈ 29.6–31.3 KB (~60× expansion);
* encryption of one registry ≈ 6.9 s, decryption ≈ 1.9 s (pure-Python
  Paillier at 2048 bits);
* communication: ``K`` check-ins per round as in any FL system, plus ``N``
  registry transfers whenever re-registration happens and ``≈ H·K`` messages
  per round when multi-time client determination is enabled.

The helpers here regenerate all three kinds of numbers from the actual
implementation so the §6.4 benchmark is a measurement, not a transcription.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from time import perf_counter
from typing import Optional

import numpy as np

from ..crypto.packing import PackedEncryptedVector, PackingScheme
from ..crypto.paillier import NoisePool, generate_keypair
from ..crypto.vector import EncryptedVector, plaintext_vector_bytes

__all__ = [
    "EncryptionOverheadReport",
    "CommunicationOverheadReport",
    "measure_encryption_overhead",
    "communication_overhead",
]


@dataclass(frozen=True)
class EncryptionOverheadReport:
    """Measured cost of encrypting/decrypting one vector of a given length.

    The ``packed_*`` fields are populated when the packed
    (BatchCrypt-style) code path was also measured; they describe the same
    logical vector shipped as ``⌈l/slots⌉`` packed ciphertexts.
    """

    vector_length: int
    key_size: int
    plaintext_bytes: int
    ciphertext_bytes: int
    encrypt_seconds: float
    decrypt_seconds: float
    packed_clients: Optional[int] = None
    packed_ciphertexts: Optional[int] = None
    packed_ciphertext_bytes: Optional[int] = None
    packed_encrypt_seconds: Optional[float] = None
    packed_decrypt_seconds: Optional[float] = None

    @property
    def plaintext_kb(self) -> float:
        return self.plaintext_bytes / 1024.0

    @property
    def ciphertext_kb(self) -> float:
        return self.ciphertext_bytes / 1024.0

    @property
    def expansion_factor(self) -> float:
        return self.ciphertext_bytes / max(self.plaintext_bytes, 1)

    @property
    def packed_expansion_factor(self) -> Optional[float]:
        """Packed ciphertext size relative to plaintext size."""
        if self.packed_ciphertext_bytes is None:
            return None
        return self.packed_ciphertext_bytes / max(self.plaintext_bytes, 1)

    @property
    def packing_gain(self) -> Optional[float]:
        """Wire-size ratio per-component / packed (higher is better)."""
        if not self.packed_ciphertext_bytes:
            return None
        return self.ciphertext_bytes / self.packed_ciphertext_bytes

    def as_row(self) -> dict:
        """A flat dict suitable for printing as one row of the §6.4 table."""
        row = {
            "vector_length": self.vector_length,
            "key_size": self.key_size,
            "plaintext_kb": round(self.plaintext_kb, 3),
            "ciphertext_kb": round(self.ciphertext_kb, 3),
            "expansion": round(self.expansion_factor, 1),
            "encrypt_s": round(self.encrypt_seconds, 4),
            "decrypt_s": round(self.decrypt_seconds, 4),
        }
        if self.packed_ciphertext_bytes is not None:
            row.update({
                "packed_kb": round(self.packed_ciphertext_bytes / 1024.0, 3),
                "packed_expansion": round(self.packed_expansion_factor, 1),
                "packed_encrypt_s": round(self.packed_encrypt_seconds, 4),
                "packed_decrypt_s": round(self.packed_decrypt_seconds, 4),
            })
        return row


@dataclass(frozen=True)
class CommunicationOverheadReport:
    """Per-round message counts of a Dubhe deployment (§6.4)."""

    baseline_messages: int        # K check-ins, present in any FL system
    registration_messages: int    # N registry transfers when re-registering
    multitime_messages: int       # ≈ H·K during multi-time client determination

    @property
    def dubhe_total(self) -> int:
        return self.baseline_messages + self.registration_messages + self.multitime_messages

    @property
    def overhead_ratio(self) -> float:
        """Dubhe's extra messages relative to the baseline check-ins."""
        if self.baseline_messages == 0:
            return float("inf")
        return (self.registration_messages + self.multitime_messages) / self.baseline_messages


def measure_encryption_overhead(vector_length: int, key_size: int,
                                trials: int = 1,
                                rng_seed: Optional[int] = None,
                                packed_clients: Optional[int] = None,
                                ) -> EncryptionOverheadReport:
    """Measure plaintext/ciphertext sizes and encrypt/decrypt wall time.

    The measured vector mimics a registry: a one-hot vector of the given
    length (values are irrelevant for cost — Paillier cost depends only on
    key size and vector length).

    When *packed_clients* is given, the packed code path is measured too:
    the same vector shipped as ``⌈l/slots⌉`` ciphertexts with per-slot
    headroom for *packed_clients* homomorphic additions, with the noise
    terms precomputed (the deployment configuration the packing exists for).
    """
    if vector_length < 1:
        raise ValueError("vector_length must be positive")
    if trials < 1:
        raise ValueError("trials must be positive")
    if packed_clients is not None and packed_clients < 1:
        raise ValueError("packed_clients must be positive when given")
    rng = random.Random(rng_seed)
    keypair = generate_keypair(key_size, rng=rng if rng_seed is not None else None)
    values = np.zeros(vector_length)
    values[0] = 1.0
    plaintext_bytes = plaintext_vector_bytes(values)

    encrypt_times = []
    decrypt_times = []
    ciphertext_bytes = 0
    for _ in range(trials):
        start = perf_counter()
        encrypted = EncryptedVector.encrypt(keypair.public_key, values)
        encrypt_times.append(perf_counter() - start)
        ciphertext_bytes = encrypted.nbytes()
        start = perf_counter()
        encrypted.decrypt(keypair.private_key)
        decrypt_times.append(perf_counter() - start)

    packed_fields: dict = {}
    if packed_clients is not None:
        scheme = PackingScheme(keypair.public_key, vector_length,
                               max_weight=packed_clients)
        noise = NoisePool(keypair.public_key,
                          rng=rng if rng_seed is not None else None)
        packed_encrypt_times = []
        packed_decrypt_times = []
        packed_bytes = 0
        packed_count = 0
        for _ in range(trials):
            noise.refill(scheme.num_ciphertexts)
            start = perf_counter()
            packed = PackedEncryptedVector.encrypt(keypair.public_key, values,
                                                   scheme=scheme, noise=noise)
            packed_encrypt_times.append(perf_counter() - start)
            packed_bytes = packed.nbytes()
            packed_count = len(packed.ciphertexts)
            start = perf_counter()
            packed.decrypt(keypair.private_key)
            packed_decrypt_times.append(perf_counter() - start)
        packed_fields = {
            "packed_clients": packed_clients,
            "packed_ciphertexts": packed_count,
            "packed_ciphertext_bytes": packed_bytes,
            "packed_encrypt_seconds": float(np.mean(packed_encrypt_times)),
            "packed_decrypt_seconds": float(np.mean(packed_decrypt_times)),
        }

    return EncryptionOverheadReport(
        vector_length=vector_length,
        key_size=key_size,
        plaintext_bytes=plaintext_bytes,
        ciphertext_bytes=ciphertext_bytes,
        encrypt_seconds=float(np.mean(encrypt_times)),
        decrypt_seconds=float(np.mean(decrypt_times)),
        **packed_fields,
    )


def communication_overhead(n_clients: int, participants_per_round: int,
                           tentative_selections: int = 1,
                           reregistration: bool = True,
                           multitime_determination: bool = False,
                           ) -> CommunicationOverheadReport:
    """Per-round communication counts of Dubhe versus a vanilla FL round.

    Parameters
    ----------
    n_clients, participants_per_round:
        ``N`` and ``K``.
    tentative_selections:
        ``H``; only adds messages when *multitime_determination* is enabled
        (the paper notes ≈ ``(H − 1)·K`` *additional* active clients, i.e.
        ``H·K`` distribution transfers in total).
    reregistration:
        Whether this round includes a registry refresh (``N`` messages).
    multitime_determination:
        Whether multi-time selection is used for client determination.
    """
    if n_clients < 1 or participants_per_round < 1:
        raise ValueError("n_clients and participants_per_round must be positive")
    if participants_per_round > n_clients:
        raise ValueError("participants_per_round cannot exceed n_clients")
    if tentative_selections < 1:
        raise ValueError("tentative_selections must be positive")
    registration = n_clients if reregistration else 0
    multitime = tentative_selections * participants_per_round if multitime_determination else 0
    return CommunicationOverheadReport(
        baseline_messages=participants_per_round,
        registration_messages=registration,
        multitime_messages=multitime,
    )
