"""The Dubhe registry: codebook construction and Algorithm 1 registration.

The registry (§5.1) is the one-hot encrypted vector through which a client
reveals — only in aggregate, never individually — which classes dominate its
local data.  Its codebook is the concatenation of one block per element
``i ∈ G``: block ``i`` has one slot per *combination* of ``i`` classes
(``C(C, i)`` slots), and a client whose ``i`` dominating classes are
``u = (c_1 < … < c_i)`` flips exactly the slot of that combination.

Algorithm 1 decides which block a client falls into: starting from the
smallest ``i ∈ G``, check whether the client's ``i``-th largest class
proportion reaches the threshold ``σ_i``; the first block that matches wins,
and the final block ``i = C`` (``σ_C = 0``) always matches, meaning "no
dominating classes / locally balanced".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import comb
from typing import Sequence

import numpy as np

from .config import DubheConfig

__all__ = ["ClientCategory", "RegistryCodebook", "RegistrationResult"]


@dataclass(frozen=True)
class ClientCategory:
    """A client's category ``u``: its dominating classes (sorted ascending)."""

    classes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("a category must contain at least one class")
        if list(self.classes) != sorted(set(self.classes)):
            raise ValueError("category classes must be sorted and unique")

    @property
    def size(self) -> int:
        return len(self.classes)

    def __iter__(self):
        return iter(self.classes)


@dataclass(frozen=True)
class RegistrationResult:
    """Output of Algorithm 1 for one client."""

    registry: np.ndarray          # the one-hot registry vector R^(t,k)
    category: ClientCategory      # the client category u^(t,k)
    block: int                    # which i ∈ G the client fell into
    index: int                    # flat index of the flipped slot


class RegistryCodebook:
    """Maps between client categories and registry vector positions."""

    def __init__(self, config: DubheConfig):
        if not config.has_all_thresholds():
            raise ValueError("all thresholds must be set before building the codebook")
        self.config = config
        self.num_classes = config.num_classes
        self.reference_set = config.reference_set
        # per-block combination tables (ascending class tuples, lexicographic)
        self._block_offset: dict[int, int] = {}
        self._block_combos: dict[int, list[tuple[int, ...]]] = {}
        self._combo_to_index: dict[tuple[int, ...], int] = {}
        offset = 0
        for i in self.reference_set:
            combos = list(combinations(range(self.num_classes), i))
            self._block_offset[i] = offset
            self._block_combos[i] = combos
            for j, combo in enumerate(combos):
                self._combo_to_index[combo] = offset + j
            offset += len(combos)
        self.length = offset

    # -- codebook geometry -------------------------------------------------------

    def block_length(self, i: int) -> int:
        """Number of slots in block ``i`` (the combination count ``C(C, i)``)."""
        if i not in self._block_combos:
            raise KeyError(f"{i} is not in the reference set")
        return comb(self.num_classes, i)

    def block_slice(self, i: int) -> slice:
        """The slice of the flat registry covered by block ``i``."""
        if i not in self._block_offset:
            raise KeyError(f"{i} is not in the reference set")
        start = self._block_offset[i]
        return slice(start, start + self.block_length(i))

    def index_of(self, category: ClientCategory | Sequence[int]) -> int:
        """Flat registry index of a category."""
        classes = tuple(category.classes if isinstance(category, ClientCategory) else
                        sorted(category))
        if classes not in self._combo_to_index:
            raise KeyError(f"category {classes} is not representable by this codebook")
        return self._combo_to_index[classes]

    def category_of(self, index: int) -> ClientCategory:
        """Inverse of :meth:`index_of`."""
        if not 0 <= index < self.length:
            raise IndexError("registry index out of range")
        for i in self.reference_set:
            block = self.block_slice(i)
            if block.start <= index < block.stop:
                return ClientCategory(self._block_combos[i][index - block.start])
        raise IndexError("registry index out of range")  # pragma: no cover - unreachable

    def empty_registry(self) -> np.ndarray:
        """An all-zero registry vector of the right length."""
        return np.zeros(self.length)

    # -- Algorithm 1 ----------------------------------------------------------------

    def register(self, distribution: np.ndarray) -> RegistrationResult:
        """Run Algorithm 1 on a client's label distribution.

        Walks the reference set in ascending order; for each candidate number
        of dominating classes ``i``, takes the top-``i`` classes of the
        distribution and checks whether the ``i``-th largest proportion
        reaches ``σ_i``.  The ``i = C`` bucket (``σ_C = 0``) always matches,
        so every client registers exactly once.
        """
        p = np.asarray(distribution, dtype=float)
        if p.shape != (self.num_classes,):
            raise ValueError(
                f"distribution must have shape ({self.num_classes},), got {p.shape}"
            )
        if np.any(p < 0) or not np.isclose(p.sum(), 1.0, atol=1e-6):
            raise ValueError("distribution must be a probability vector")
        # classes ordered by decreasing proportion (ties broken by class id,
        # matching the argmax scan in Algorithm 1)
        order = np.lexsort((np.arange(self.num_classes), -p))
        for i in self.reference_set:
            sigma = self.config.threshold_for(i)
            if i > self.num_classes:
                continue
            top = order[:i]
            m_i = p[top[-1]] if i <= len(order) else 0.0
            if i == self.num_classes or m_i >= sigma:
                category = ClientCategory(tuple(sorted(int(c) for c in top)))
                index = self.index_of(category)
                registry = self.empty_registry()
                registry[index] = 1.0
                return RegistrationResult(registry, category, block=i, index=index)
        raise RuntimeError("Algorithm 1 failed to register the client")  # pragma: no cover

    def register_many(self, distributions: Sequence[np.ndarray] | np.ndarray,
                      ) -> list[RegistrationResult]:
        """Register every client of a federation (row per client)."""
        return [self.register(np.asarray(p)) for p in distributions]

    def aggregate(self, registrations: Sequence[RegistrationResult]) -> np.ndarray:
        """The overall registry ``R_A = Σ_k R^(t,k)`` (plaintext path)."""
        if not registrations:
            raise ValueError("cannot aggregate zero registrations")
        total = self.empty_registry()
        for reg in registrations:
            total += reg.registry
        return total

    def describe(self, overall_registry: np.ndarray, max_entries: int | None = None) -> list[dict]:
        """Human-readable view of an overall registry (Figure 10 style).

        Returns one record per non-zero slot: the category, its block and the
        client count, sorted by decreasing count.
        """
        overall = np.asarray(overall_registry)
        if overall.shape != (self.length,):
            raise ValueError("overall registry has the wrong length")
        entries = []
        for index in np.flatnonzero(overall):
            category = self.category_of(int(index))
            entries.append({
                "category": tuple(category.classes),
                "block": category.size,
                "count": float(overall[index]),
            })
        entries.sort(key=lambda e: -e["count"])
        if max_entries is not None:
            entries = entries[:max_entries]
        return entries
