"""Weight initialisers (Kaiming / Xavier) for the NumPy NN substrate.

All initialisers take an explicit ``numpy.random.Generator`` so that model
construction is bit-reproducible — federated experiments must start every
comparison (random vs greedy vs Dubhe selection) from the *same* global
model.
"""

from __future__ import annotations

import numpy as np

__all__ = ["kaiming_uniform", "xavier_uniform", "zeros"]


def kaiming_uniform(shape: tuple[int, ...], fan_in: int,
                    rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation, suitable for ReLU networks."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialisation, suitable for linear/softmax layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero initialisation (biases)."""
    return np.zeros(shape)
