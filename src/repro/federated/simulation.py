"""End-to-end federated training simulation.

:class:`FederatedSimulation` wires together the substrates: a client
partition (who holds what), a synthetic data generator (what the samples look
like), the NumPy model stack, a pluggable client-selection strategy and the
FedVC-style server.  One instance reproduces one curve of Figures 2, 6 or 8:
construct it with a selector (random / greedy / Dubhe), call :meth:`run`, and
read the accuracy series from the returned :class:`TrainingHistory`.

The selector is duck-typed: anything with ``select(round_index)`` returning a
sequence of client indices works, so the Dubhe machinery in
:mod:`repro.core` plugs in without this module importing it (the paper calls
Dubhe "pluggable"; the code structure mirrors that).
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field, fields
from typing import Callable, Optional, Protocol, Sequence

import numpy as np

from ..core.config import (ExecutorConfig, LedgerConfig, TransportConfig,
                           resolve_run_mode, resolve_runtime_dtype,
                           resolve_shard_policy)
from ..data.cohort import DatasetCache
from ..data.dataset import ArrayDataset
from ..data.distributions import emd, uniform_distribution
from ..data.partition import ClientPartition
from ..data.synthetic import SyntheticImageGenerator
from ..nn.module import Module
from ..scenarios.engine import FaultInjector
from ..scenarios.spec import ScenarioSpec
from .client import FederatedClient, LocalTrainingConfig
from .executor import LocalUpdateExecutor
from .history import RoundRecord, TrainingHistory
from .server import EVAL_BACKENDS, FederatedServer

__all__ = ["ClientSelectorProtocol", "FederatedConfig", "FederatedSimulation"]

#: flat FederatedConfig field → its home in the nested ExecutorConfig group
_EXECUTOR_ALIASES = {
    "executor_mode": "mode",
    "num_workers": "num_workers",
    "shard_policy": "shard_policy",
    "scheduler_timeout": "scheduler_timeout",
    "dtype": "dtype",
    "dataset_cache_size": "dataset_cache_size",
    "eval_backend": "eval_backend",
}

#: flat FederatedConfig field → its home in the nested LedgerConfig group
_LEDGER_ALIASES = {
    "ledger_path": "path",
    "run_mode": "run_mode",
    "replay_source_run_id": "replay_source_run_id",
    "run_name": "run_name",
}

#: set while repro.api.Session is the constructor — the facade is the
#: supported entry point, so it must not trip its own deprecation shim
_session_entry = threading.local()


class ClientSelectorProtocol(Protocol):
    """Anything that can pick the participating clients of a round."""

    def select(self, round_index: int) -> Sequence[int]:  # pragma: no cover - protocol
        """Return the indices of the clients participating in this round."""
        ...


@dataclass(frozen=True)
class FederatedConfig:
    """Top-level configuration of a federated run.

    ``executor_mode`` selects the local-update back-end
    (``"sequential"``/``"thread"``/``"process"``/``"vectorized"``/
    ``"parallel"``; see :class:`repro.federated.LocalUpdateExecutor`).
    ``num_workers`` / ``shard_policy`` / ``scheduler_timeout`` configure the
    ``"parallel"`` mode's multi-cohort scheduler (worker-process count,
    defaulting to one per core; client→shard assignment, see
    :data:`repro.core.config.SHARD_POLICIES`; and the per-round worker-reply
    deadline in seconds — raise it for genuinely long local updates,
    ``None`` waits forever).  ``dataset_cache_size``
    bounds the shared LRU pool of materialised client datasets; ``None``
    disables pooling (each client pins its own data forever, the pre-cache
    behaviour).  ``dtype`` is the cohort-runtime precision knob
    (:data:`repro.core.config.RUNTIME_DTYPES`): ``"float64"`` (default)
    reproduces sequential execution bit-for-bit, ``"float32"`` is the
    cohort-only fast path with single-precision tolerance.
    ``eval_backend`` picks the server's test pass
    (``"batched"``/``"sequential"``, identical metrics; see
    :class:`repro.federated.FederatedServer`).  ``scenario`` opts the run
    into fault injection (:class:`repro.scenarios.ScenarioSpec`): churn,
    availability, stragglers, dropouts and label drift, with partial-round
    aggregation below the spec's participation floor.  ``None`` (default)
    and the empty ``ScenarioSpec()`` both leave the run bit-identical to a
    fault-free one.

    ``ledger_path`` opts the run into the run ledger
    (:mod:`repro.ledger`): every completed round is durably committed to
    that SQLite file.  ``run_mode`` picks the ledger behaviour
    (:data:`repro.core.config.RUN_MODES`): ``"live"`` records a new run,
    ``"resume"`` continues a recorded run from its last committed
    checkpoint, ``"verify"`` re-executes a recorded run and asserts every
    round matches bit-for-bit.  ``replay_source_run_id`` names which
    recorded run to resume/verify (default: the ledger's most recent);
    ``run_name`` labels a freshly recorded run.

    The flat executor/ledger knobs are also available as nested groups —
    ``executor`` (:class:`~repro.core.config.ExecutorConfig`), ``ledger``
    (:class:`~repro.core.config.LedgerConfig`) and ``transport``
    (:class:`~repro.core.config.TransportConfig`, the service layer's
    socket/timeout knobs, which have no flat spelling).  Either spelling
    resolves identically: a nested group fills the matching flat fields,
    flat kwargs fill the group, and naming the same knob differently in
    both spellings is an error.

    Example
    -------
    >>> config = FederatedConfig(rounds=5, executor_mode="parallel",
    ...                          num_workers=2, seed=0)
    >>> config.shard_policy
    'contiguous'
    >>> config.executor.mode
    'parallel'
    >>> from repro.core.config import ExecutorConfig
    >>> FederatedConfig(executor=ExecutorConfig(mode="parallel")).executor_mode
    'parallel'
    """

    rounds: int = 20
    eval_every: int = 1
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    executor_mode: str = "sequential"
    dataset_cache_size: Optional[int] = 1024
    dtype: str = "float64"
    eval_backend: str = "batched"
    num_workers: Optional[int] = None
    shard_policy: str = "contiguous"
    scheduler_timeout: Optional[float] = 120.0
    seed: Optional[int] = None
    scenario: Optional[ScenarioSpec] = None
    run_mode: str = "live"
    ledger_path: Optional[str] = None
    replay_source_run_id: Optional[str] = None
    run_name: Optional[str] = None
    executor: Optional[ExecutorConfig] = None
    ledger: Optional[LedgerConfig] = None
    transport: Optional[TransportConfig] = None

    def _sync_group(self, name: str, group_cls, aliases: "dict[str, str]") -> None:
        """Reconcile one nested group with its flat aliases (both ways)."""
        group = getattr(self, name)
        if group is None:
            object.__setattr__(self, name, group_cls(**{
                nested: getattr(self, flat) for flat, nested in aliases.items()
            }))
            return
        if not isinstance(group, group_cls):
            raise TypeError(f"{name} must be a {group_cls.__name__} (or None)")
        defaults = {f.name: f.default for f in fields(type(self))}
        for flat, nested in aliases.items():
            flat_value = getattr(self, flat)
            group_value = getattr(group, nested)
            if flat_value != defaults[flat] and flat_value != group_value:
                raise ValueError(
                    f"conflicting configuration: {flat}={flat_value!r} and "
                    f"{name}.{nested}={group_value!r} name the same knob; "
                    "use one spelling"
                )
            object.__setattr__(self, flat, group_value)

    def __post_init__(self) -> None:
        self._sync_group("executor", ExecutorConfig, _EXECUTOR_ALIASES)
        self._sync_group("ledger", LedgerConfig, _LEDGER_ALIASES)
        if self.transport is None:
            object.__setattr__(self, "transport", TransportConfig())
        elif not isinstance(self.transport, TransportConfig):
            raise TypeError("transport must be a TransportConfig (or None)")
        if self.rounds < 1:
            raise ValueError("rounds must be positive")
        if self.eval_every < 1:
            raise ValueError("eval_every must be positive")
        if self.dataset_cache_size is not None and self.dataset_cache_size < 1:
            raise ValueError("dataset_cache_size must be positive when given")
        resolved = resolve_runtime_dtype(self.dtype)
        if resolved != np.dtype("float64") and self.executor_mode not in (
                "vectorized", "parallel"):
            raise ValueError(
                "dtype='float32' is the cohort fast path and requires "
                "executor_mode='vectorized' or 'parallel'"
            )
        if self.num_workers is not None:
            if self.num_workers < 1:
                raise ValueError("num_workers must be positive when given")
            if self.executor_mode != "parallel":
                raise ValueError(
                    "num_workers configures the parallel scheduler; it "
                    "requires executor_mode='parallel'"
                )
        resolve_shard_policy(self.shard_policy)
        if self.shard_policy != "contiguous" and self.executor_mode != "parallel":
            raise ValueError(
                "shard_policy configures the parallel scheduler; it "
                "requires executor_mode='parallel'"
            )
        if self.scheduler_timeout is not None and self.scheduler_timeout <= 0:
            raise ValueError("scheduler_timeout must be positive (or None)")
        if self.eval_backend not in EVAL_BACKENDS:
            raise ValueError(f"eval_backend must be one of {EVAL_BACKENDS}")
        if self.scenario is not None and not isinstance(self.scenario, ScenarioSpec):
            raise TypeError("scenario must be a ScenarioSpec (or None)")
        if (self.scenario is not None and self.scenario.network is not None
                and not self.scenario.network.is_empty()
                and self.transport.kind != "socket"):
            raise ValueError(
                "scenario.network injects faults on real sockets and "
                "requires transport kind='socket'"
            )
        resolve_run_mode(self.run_mode)
        if self.run_mode != "live" and self.ledger_path is None:
            raise ValueError(
                f"run_mode={self.run_mode!r} replays a recorded run and "
                "requires ledger_path"
            )
        if self.replay_source_run_id is not None and self.run_mode == "live":
            raise ValueError(
                "replay_source_run_id names a recorded run to resume or "
                "verify; it is invalid with run_mode='live'"
            )


class FederatedSimulation:
    """Simulate federated training with a pluggable client-selection strategy.

    Example
    -------
    >>> from repro import (FederatedConfig, FederatedSimulation,
    ...                    quick_federation, make_uniform_test_set)
    >>> from repro.core import RandomSelector
    >>> from repro.nn.models import MLP
    >>> partition, generator = quick_federation(n_clients=20, seed=0)
    >>> sim = FederatedSimulation(
    ...     partition=partition, generator=generator,
    ...     model_factory=lambda: MLP(64, 10, hidden=(16,), seed=7),
    ...     selector=RandomSelector(partition.client_distributions(), 4, seed=0),
    ...     test_set=make_uniform_test_set(generator, samples_per_class=2, seed=1),
    ...     config=FederatedConfig(rounds=2, executor_mode="vectorized", seed=0),
    ... )
    >>> history = sim.run()
    >>> len(history)
    2
    """

    def __init__(self, partition: ClientPartition, generator: SyntheticImageGenerator,
                 model_factory: Callable[[], Module], selector: ClientSelectorProtocol,
                 test_set: ArrayDataset, config: Optional[FederatedConfig] = None,
                 recipe=None):
        if partition.num_classes != generator.num_classes:
            raise ValueError("partition and generator disagree on the number of classes")
        self.partition = partition
        self.generator = generator
        self.selector = selector
        self.test_set = test_set
        self.config = config or FederatedConfig()
        if not getattr(_session_entry, "active", False):
            warnings.warn(
                "constructing FederatedSimulation directly is deprecated; "
                "drive runs through repro.api.Session (see docs/session.md "
                "for the migration table)",
                DeprecationWarning, stacklevel=2,
            )
        self.server = FederatedServer(model_factory,
                                      eval_backend=self.config.eval_backend)
        from ..transport.base import build_transport

        #: the seam every round speaks to: in-process executors or sockets
        #: (a scenario's NetworkSpec interposes the chaos proxy, keyed by
        #: the scenario seed so network faults replay deterministically)
        scenario = self.config.scenario
        self.transport = build_transport(
            self.config.transport, self.config.executor,
            network=None if scenario is None else scenario.network,
            chaos_seed=0 if scenario is None else scenario.seed,
        )
        #: the in-process LocalUpdateExecutor when there is one (None over
        #: sockets); kept as a first-class attribute because scheduler and
        #: workspace telemetry live here
        self.executor: Optional[LocalUpdateExecutor] = getattr(
            self.transport, "executor", None)
        self.dataset_cache = (
            None if self.config.dataset_cache_size is None
            else DatasetCache(self.config.dataset_cache_size)
        )
        self._uniform = uniform_distribution(partition.num_classes)
        self._clients: dict[int, FederatedClient] = {}
        self._rng = np.random.default_rng(self.config.seed)
        self.history = TrainingHistory()
        #: the scenario's fault engine (None = fault-free run); its RNG
        #: streams are keyed by (scenario seed, round, client), independent
        #: of every other generator in the simulation
        self.injector: Optional[FaultInjector] = (
            None if self.config.scenario is None
            else FaultInjector(self.config.scenario)
        )
        #: how many label-drift events have fired (salts regenerated data)
        self._drift_events = 0
        #: the run-ledger attachment (None unless config.ledger_path is set);
        #: created last so resume/verify fast-forward sees a fully built
        #: simulation.  *recipe* (a repro.ledger.RunRecipe) is recorded next
        #: to the run so a cold process can rebuild these components.
        self.ledger_session = None
        if self.config.ledger_path is not None:
            from ..ledger.modes import LedgerSession

            self.ledger_session = LedgerSession(self, recipe=recipe)

    # -- client materialisation ----------------------------------------------------

    def client(self, index: int) -> FederatedClient:
        """The :class:`FederatedClient` for partition row *index* (cached, lazy data)."""
        if index not in self._clients:
            counts = self.partition.client_class_counts[index]
            data_seed = (0 if self.config.seed is None else self.config.seed) + 100_003 * index
            # drifted data is *new* data, not a reshuffle: salt the stream per
            # drift event (zero events leaves the seed — and the run — unchanged)
            data_seed += 999_999_937 * self._drift_events

            def factory(counts=counts, data_seed=data_seed) -> ArrayDataset:
                return self.generator.generate(counts, rng=np.random.default_rng(data_seed))

            self._clients[index] = FederatedClient(
                client_id=index,
                num_classes=self.partition.num_classes,
                dataset_factory=factory,
                seed=data_seed,
                cache=self.dataset_cache,
            )
        return self._clients[index]

    # -- round loop -------------------------------------------------------------------

    def run_round(self, round_index: int) -> RoundRecord:
        """Run one complete round: select, train locally, aggregate, evaluate.

        Under a scenario (:attr:`FederatedConfig.scenario`) the round first
        applies any due label-drift event, then filters the selected cohort
        through the injector's :class:`~repro.scenarios.RoundPlan`
        (availability and churn strike before any compute), hands the
        mid-round faults to the executor, and aggregates only the survivors
        — or skips aggregation entirely when they fall below the scenario's
        ``min_participation`` floor.  The resulting
        :class:`~repro.federated.history.RoundRecord` carries the full
        planned-vs-actual story.
        """
        drift_applied = False
        if self.injector is not None and self.injector.drift_due(round_index):
            self._apply_drift()
            drift_applied = True

        selected = list(self.selector.select(round_index))
        if len(selected) == 0:
            raise RuntimeError(f"selector returned no clients at round {round_index}")
        population = self.partition.selection_population(selected)
        bias = emd(population, self._uniform)

        faults = None
        trainable = selected
        plan = None
        if self.injector is not None:
            plan = self.injector.plan_round(round_index, selected)
            trainable = list(plan.trainable)
            faults = plan.cohort_faults()

        probabilities = getattr(self.selector, "probabilities", None)
        if probabilities is not None:
            self.transport.broadcast_probabilities(
                round_index, np.asarray(probabilities, dtype=float).tolist())

        clients = [self.client(k) for k in trainable]
        # read-only views: every executor back-end copies the state on load,
        # so one shared global state serves all K workers without K deep copies
        global_state = self.server.global_state(copy=False)
        states = self.transport.run_round(
            clients, self.server.new_client_model, global_state, self.config.local,
            round_index=round_index, faults=faults,
        )

        actual_clients: Optional[tuple[int, ...]] = None
        failures: dict[int, str] = {}
        actual_bias: Optional[float] = None
        transport_failures = dict(self.transport.last_round_failures)
        if self.injector is None and not transport_failures:
            self.server.aggregate(states)
        else:
            failures = dict(plan.failures_by_client()) if plan is not None else {}
            for position, cause in transport_failures.items():
                failures[trainable[position]] = cause
            actual_clients = tuple(k for k in trainable if k not in failures)
            # injected scenarios carry their own participation floor; real
            # transport failures (socket stragglers/disconnects) fall back to
            # the transport group's floor
            floor = (self.config.scenario.min_participation
                     if self.config.scenario is not None
                     else self.config.transport.min_participation)
            self.server.aggregate(
                states,
                expected_count=len(selected),
                min_participation=floor,
            )
            actual_bias = (
                float("nan") if not actual_clients
                else emd(self.partition.selection_population(actual_clients),
                         self._uniform)
            )

        accuracy: Optional[float] = None
        if round_index % self.config.eval_every == 0:
            accuracy = self.server.evaluate(self.test_set)["accuracy"]

        record = RoundRecord(
            round_index=round_index,
            selected_clients=tuple(selected),
            population_distribution=population,
            population_bias=bias,
            test_accuracy=accuracy,
            actual_clients=actual_clients,
            failures=failures,
            fallback_reason=self.transport.last_fallback_reason,
            aggregation_skipped=self.server.last_aggregation_skipped,
            actual_population_bias=actual_bias,
            round_delay=self.transport.last_round_delay,
            drift_applied=drift_applied,
            decode_failures=dict(self.transport.last_round_decode_failures),
            disconnects=dict(self.transport.last_round_disconnects),
        )
        self.transport.on_round_complete(record)
        self.history.append(record)
        if self.ledger_session is not None:
            self.ledger_session.on_round(record, self.server.global_state())
        return record

    # -- label drift ----------------------------------------------------------------

    def _apply_drift(self) -> None:
        """Rotate every client's label counts and re-register the federation.

        Implements the scenario's :class:`~repro.scenarios.DriftSpec`: each
        client's per-class sample counts shift by ``drift.shift`` positions,
        the cached clients and pooled datasets are invalidated (their data is
        regenerated from the drifted counts on next selection), and the
        selector re-registers against the new distributions — through
        :meth:`repro.core.DubheSelector.refresh_registrations` when
        available, else by updating its ``client_distributions``.  With
        ``drift.secure_reregistration`` the refresh also runs the encrypted
        registration round and checks it against the plaintext registry.
        """
        spec = self.config.scenario
        assert spec is not None  # only called on scenario runs
        counts = np.roll(self.partition.client_class_counts, spec.drift.shift, axis=1)
        self.partition = ClientPartition(counts, self.partition.num_classes,
                                         metadata=dict(self.partition.metadata))
        self._drift_events += 1
        self._clients.clear()
        if self.dataset_cache is not None:
            self.dataset_cache.clear()
        distributions = self.partition.client_distributions()
        if hasattr(self.selector, "refresh_registrations"):
            self.selector.refresh_registrations(distributions)
        elif hasattr(self.selector, "client_distributions"):
            self.selector.client_distributions = distributions
        if spec.drift.secure_reregistration:
            self._verify_secure_reregistration(distributions)

    def _verify_secure_reregistration(self, distributions: np.ndarray) -> None:
        """Run the encrypted registration round and check it against plaintext.

        Requires a Dubhe-style selector (one carrying a
        :class:`~repro.core.DubheConfig` and plaintext registrations); the
        encrypted round runs with the drift spec's ``key_size`` and its
        decrypted overall registry must equal the plaintext sum exactly —
        Paillier aggregation of integer registries is lossless.
        """
        import dataclasses

        from ..core.secure import SecureRegistrationRound

        config = getattr(self.selector, "config", None)
        registrations = getattr(self.selector, "registrations", None)
        if config is None or registrations is None:
            raise RuntimeError(
                "secure_reregistration needs a Dubhe selector (with .config "
                "and .registrations); got "
                f"{type(self.selector).__name__}"
            )
        drift = self.config.scenario.drift
        round_config = dataclasses.replace(config, key_size=drift.key_size)
        overall, _, _ = SecureRegistrationRound(round_config).run(distributions)
        expected = np.sum([r.registry for r in registrations], axis=0)
        if not np.array_equal(overall, expected):
            raise RuntimeError(
                "decrypted overall registry does not match the plaintext "
                "re-registration"
            )

    def run(self, rounds: Optional[int] = None, progress: Optional[Callable[[RoundRecord], None]] = None,
            ) -> TrainingHistory:
        """Run the full federated training loop and return the history.

        With a ledger attached the loop honours the session's bounds:
        RESUME starts at the first uncommitted round (already-committed
        rounds are restored to the history during fast-forward), VERIFY
        re-executes exactly the committed rounds.  The session is notified
        when the loop completes (marking the run finished, or raising the
        verification report).
        """
        total = rounds if rounds is not None else self.config.rounds
        if total < 1:
            raise ValueError("rounds must be positive")
        start = 0
        if self.ledger_session is not None:
            start, total = self.ledger_session.run_bounds(total)
        for t in range(start, total):
            record = self.run_round(t)
            if progress is not None:
                progress(record)
        if self.ledger_session is not None:
            self.ledger_session.on_run_complete(self.history)
        return self.history

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Release round-persistent runtime state (idempotent).

        Closes the transport (shutting down the parallel scheduler's worker
        processes in process, or the asyncio socket server — cancelling any
        round still pending on the loop), drops the server's cached batched
        evaluator and releases the attached ledger session's SQLite
        connection (committed rounds are already durable).  The three
        teardowns are chained so a failure in one never leaks the others'
        resources, and every one is idempotent — closing a transport- or
        ledger-wrapped simulation twice, or while its server loop still
        holds a pending round, is safe.  The simulation stays usable — the
        next round simply rebuilds what it needs.  Simulations also work
        as context managers: ``with FederatedSimulation(...) as sim: ...``.
        """
        try:
            self.transport.close()
        finally:
            try:
                self.server.close()
            finally:
                if self.ledger_session is not None:
                    self.ledger_session.close()

    def __enter__(self) -> "FederatedSimulation":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
